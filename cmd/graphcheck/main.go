// Command graphcheck evaluates every topological condition of the paper on
// a graph: the 1-/2-/3-reach family (with violation witnesses), the
// Tseng–Vaidya partition conditions, vertex connectivity for undirected
// inputs, and pairwise disjoint-path counts.
//
// Usage:
//
//	graphcheck -graph fig1b -f 2
//	graphcheck -file topo.txt -f 1 -k 4
//	graphcheck -graph wheel:4 -f 1 -dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		spec   = flag.String("graph", "", "built-in graph spec (clique:5, fig1a, fig1b, circulant:7:1,2, random:6:0.5:1, ...)")
		file   = flag.String("file", "", "graph file in the 'n <order> / e <from> <to>' format")
		f      = flag.Int("f", 1, "fault bound")
		kreach = flag.Int("k", 3, "highest k for the k-reach family report")
		dot    = flag.Bool("dot", false, "also print Graphviz DOT")
	)
	flag.Parse()

	g, err := load(*spec, *file)
	if err != nil {
		return err
	}

	fmt.Printf("graph: %s\n", g)
	rep := repro.CheckConditions(g, *f)
	fmt.Printf("f = %d\n", *f)
	if !rep.Certified {
		fmt.Printf("  %s\n", rep.Note)
		if *dot {
			fmt.Println(g.DOT())
		}
		return nil
	}
	if rep.Note != "" {
		fmt.Printf("  note: %s\n", rep.Note)
	}
	fmt.Printf("  1-reach (CCS, crash sync exact):        %v (partition form: %v)\n", rep.OneReach, rep.CCS)
	fmt.Printf("  2-reach (CCA, crash async approximate): %v (partition form: %v)\n", rep.TwoReach, rep.CCA)
	fmt.Printf("  3-reach (BCS, Byzantine — Theorem 4):   %v (partition form: %v)\n", rep.ThreeReach, rep.BCS)
	if rep.Witness3 != nil {
		fmt.Printf("  3-reach violation witness: %s\n", rep.Witness3.String())
	}
	if rep.Kappa >= 0 {
		fmt.Printf("  undirected: κ(G) = %d (n > 3f: %v, κ > 2f: %v)\n",
			rep.Kappa, g.N() > 3**f, rep.Kappa > 2**f)
	}
	for k := 4; k <= *kreach; k++ {
		ok, _ := repro.CheckKReach(g, k, *f)
		fmt.Printf("  %d-reach: %v\n", k, ok)
	}

	// Disjoint-path extremes (the Figure 1(b) discussion).
	minPair, minU, minV := g.N(), -1, -1
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if k := g.MaxDisjointPaths(u, v, graph.EmptySet); k < minPair {
				minPair, minU, minV = k, u, v
			}
		}
	}
	fmt.Printf("  min disjoint paths over pairs: %d (%d -> %d); all-pair RMT needs 2f+1 = %d\n",
		minPair, minU, minV, 2**f+1)

	if *dot {
		fmt.Println(g.DOT())
	}
	return nil
}

func load(spec, file string) (*repro.Graph, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("use either -graph or -file, not both")
	case spec != "":
		return repro.NamedGraph(spec)
	case file != "":
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		return graph.Unmarshal(fh)
	default:
		return nil, fmt.Errorf("one of -graph or -file is required")
	}
}
