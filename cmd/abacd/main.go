// Command abacd runs ONE vertex of a scenario as a long-lived consensus
// daemon — consensus as a service. Where abacnode executes a single
// protocol instance and exits, abacd stays up, multiplexing any number of
// concurrent instances over persistent peer connections: clients submit
// instances on the JSON-lines client plane, every daemon of the fleet
// runs the instance's machine for its own vertex, and each reports the
// decision at its vertex.
//
// A four-terminal clique:4 fleet (see README for the full walkthrough):
//
//	terminal i$ abacd -scenario examples/service.json -id i \
//	              -peers "0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103" \
//	              -client 127.0.0.1:810i -http 127.0.0.1:820i
//
// Then submit work with the load generator or by hand:
//
//	$ abacload -addrs 127.0.0.1:8100 -duration 2s
//	$ printf '{"op":"submitwait","protocol":"acs"}\n' | nc 127.0.0.1:8100
//	$ curl -s http://127.0.0.1:8200/metrics
//
// The first SIGINT/SIGTERM drains gracefully: new submits and peer
// announcements are refused (healthz flips to 503), in-flight instances
// finish, then the daemon exits. A second signal tears down immediately.
//
// Usage:
//
//	abacd -scenario run.json -id 0 -peers "0=host:port,1=host:port,..."
//	abacd ... -client host:port -http host:port   # client + metrics planes
//	abacd ... -protocols acs,bw                   # serve several protocols
//	abacd ... -queue-cap 4096 -linger 2s -drain-timeout 30s
//	abacd ... -http host:port -pprof              # /debug/pprof incl. mutex/block
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abacd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioPath = flag.String("scenario", "", "JSON scenario file shared by every daemon of the fleet (required)")
		id           = flag.Int("id", -1, "this daemon's vertex id (required)")
		peersFlag    = flag.String("peers", "", `comma-separated peer-plane addresses: "0=host:port,1=host:port,..." (required)`)
		listen       = flag.String("listen", "", "peer-plane bind override (default: this vertex's -peers entry)")
		clientAddr   = flag.String("client", "", "client-plane bind address (JSON lines; omit to disable)")
		httpAddr     = flag.String("http", "", "observability-plane bind address (/metrics, /healthz; omit to disable)")
		protocols    = flag.String("protocols", "", "comma-separated protocols to serve (default: the scenario's)")
		queueCap     = flag.Int("queue-cap", 0, "per-peer outbound queue bound (0 = default)")
		linger       = flag.Duration("linger", 0, "post-decision service window per instance (0 = default)")
		drainTO      = flag.Duration("drain-timeout", 0, "graceful-shutdown bound on in-flight instances (0 = default)")
		pprofFlag    = flag.Bool("pprof", false, "mount /debug/pprof on the -http plane and enable mutex/block profiling")
	)
	flag.Parse()

	if *scenarioPath == "" {
		return fmt.Errorf("-scenario is required")
	}
	if *id < 0 {
		return fmt.Errorf("-id is required (this daemon's vertex)")
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required")
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		return err
	}
	s, err := repro.ParseScenario(data)
	if err != nil {
		return err
	}

	bind := *listen
	if bind == "" {
		var ok bool
		if bind, ok = peers[*id]; !ok {
			return fmt.Errorf("no -peers entry for own id %d and no -listen override", *id)
		}
	}
	peerL, err := net.Listen("tcp", bind)
	if err != nil {
		return fmt.Errorf("peer plane: %w", err)
	}
	cfg := service.Config{
		ID:           *id,
		Scenario:     *s,
		PeerListener: peerL,
		Peers:        peerOutEdges(peers, *id),
		QueueCap:     *queueCap,
		Linger:       *linger,
		DrainTimeout: *drainTO,
		Pprof:        *pprofFlag,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Protocols = append(cfg.Protocols, p)
			}
		}
	}
	if *clientAddr != "" {
		if cfg.ClientListener, err = net.Listen("tcp", *clientAddr); err != nil {
			return fmt.Errorf("client plane: %w", err)
		}
	}
	if *httpAddr != "" {
		if cfg.HTTPListener, err = net.Listen("tcp", *httpAddr); err != nil {
			return fmt.Errorf("observability plane: %w", err)
		}
	}

	d, err := service.New(cfg)
	if err != nil {
		return err
	}
	d.Start(context.Background())
	fmt.Fprintf(os.Stderr, "abacd: vertex %d serving %v on %s (client %s, http %s)\n",
		*id, d.Protocols(), peerL.Addr(), orOff(*clientAddr), orOff(*httpAddr))

	// First signal: drain. Second: immediate teardown.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Fprintf(os.Stderr, "abacd: vertex %d draining (signal again for immediate shutdown)\n", *id)
	drainCtx, cancel := context.WithCancel(context.Background())
	go func() {
		<-sigs
		fmt.Fprintf(os.Stderr, "abacd: vertex %d immediate shutdown\n", *id)
		cancel()
	}()
	err = d.Shutdown(drainCtx)
	cancel()
	snap := d.Snapshot()
	fmt.Fprintf(os.Stderr, "abacd: vertex %d exiting: %d submitted, %d opened, %d decided, %d shed\n",
		*id, snap.Submitted, snap.Opened, snap.Decided, snap.Queue.Shed+snap.PendingShed)
	if err != nil && drainCtx.Err() == nil {
		return err
	}
	return nil
}

func orOff(addr string) string {
	if addr == "" {
		return "off"
	}
	return addr
}

// peerOutEdges passes the peer map through minus our own entry (the Mux
// wants only out-neighbors; extra entries for non-neighbors are ignored by
// construction in the service).
func peerOutEdges(peers map[int]string, self int) map[int]string {
	out := make(map[int]string, len(peers))
	for id, addr := range peers {
		if id != self {
			out[id] = addr
		}
	}
	return out
}

// parsePeers parses "0=host:port,1=host:port,..." into a vertex->address
// map, rejecting duplicates and malformed entries eagerly (the same
// grammar as abacnode).
func parsePeers(s string) (map[int]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]string)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		idStr, addr, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", item)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return nil, fmt.Errorf("peer %q: bad vertex id: %w", item, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("peer %q: vertex id must be non-negative", item)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("peer %q: empty address", item)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("peer %q: vertex %d listed twice", item, id)
		}
		out[id] = addr
	}
	return out, nil
}
