package main

import (
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestParseInputs(t *testing.T) {
	got, err := parseInputs("0, 1.5 ,2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 1.5, 2}) {
		t.Errorf("parseInputs = %v", got)
	}
	if _, err := parseInputs("1,2", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("1,x,3", 3); err == nil {
		t.Error("garbage accepted")
	}
	def, err := parseInputs("", 5)
	if err != nil || len(def) != 5 {
		t.Errorf("default inputs: %v %v", def, err)
	}
}

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("2:silent; 3:extreme:42")
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Kind != "silent" || got[2].Params != nil {
		t.Errorf("fault 2 = %+v", got[2])
	}
	// The scalar folds into the strategy's primary param eagerly.
	if got[3].Kind != "extreme" || got[3].Params["value"] != 42 {
		t.Errorf("fault 3 = %+v", got[3])
	}
	// Omitted params defer to the registry defaults (no params emitted).
	def, err := parseFaults("1:crash")
	if err != nil || def[1].Params != nil {
		t.Errorf("crash default: %+v %v", def, err)
	}
	// Named multi-params.
	kv, err := parseFaults("1:crash:after=5,finalSends=2")
	if err != nil || kv[1].Params["after"] != 5 || kv[1].Params["finalSends"] != 2 {
		t.Errorf("kv params: %+v %v", kv, err)
	}
	// Composed layers.
	comp, err := parseFaults("1:crash:after=8+noise:amp=25+replay")
	if err != nil {
		t.Fatal(err)
	}
	want := []repro.MutationSpec{
		{Kind: "noise", Params: map[string]float64{"amp": 25}},
		{Kind: "replay"},
	}
	if !reflect.DeepEqual(comp[1].Compose, want) {
		t.Errorf("compose = %+v", comp[1].Compose)
	}
	// Exponent notation with an explicit plus is a value, not a layer
	// separator (regression: the compose splitter must not cut 1e+9).
	exp, err := parseFaults("1:extreme:1e+9; 2:noise:amp=2.5e+3")
	if err != nil || exp[1].Params["value"] != 1e9 || exp[2].Params["amp"] != 2.5e3 {
		t.Errorf("exponent params: %+v %v", exp, err)
	}
	if len(exp[1].Compose) != 0 || len(exp[2].Compose) != 0 {
		t.Errorf("exponent split into layers: %+v", exp)
	}
	for _, bad := range []string{"x:silent", "1", "1:nope", "1:nope:x=3", "1:crash:x", "1:silent:3", "1:crash:after", "1:crash+warp"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) should fail", bad)
		}
	}
	if got, err := parseFaults(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := parsePolicy(""); err != nil || p != nil {
		t.Errorf("empty policy: %v %v", p, err)
	}
	p, err := parsePolicy("lifo")
	if err != nil || p.Name != "lifo" || p.Params != nil {
		t.Errorf("lifo: %+v %v", p, err)
	}
	p, err = parsePolicy("bounded:bound=8")
	if err != nil || p.Name != "bounded" || p.Params["bound"] != 8 {
		t.Errorf("bounded: %+v %v", p, err)
	}
	for _, bad := range []string{"warp", "bounded:bound", "bounded:bound=x"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) should fail", bad)
		}
	}
	// Unknown names must mention the valid values.
	if _, err := parsePolicy("warp"); err == nil || !strings.Contains(err.Error(), "valid values are") {
		t.Errorf("unfriendly policy error: %v", err)
	}
}

func TestBuildScenarioValidatesEagerly(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*repro.Scenario, error)
		errHas string
	}{
		{"bad protocol", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "paxos", 1, 0, 0.1, 1, 0, "", "", 0, "", 0, "")
		}, "valid values are"},
		{"bad engine", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "bw", 1, 0, 0.1, 1, 0, "", "", 0, "quantum", 0, "")
		}, "valid values are"},
		{"bad graph", func() (*repro.Scenario, error) {
			return buildScenario("mobius:4", "bw", 1, 0, 0.1, 1, 0, "", "", 0, "", 0, "")
		}, "unknown spec"},
		{"bad fault node", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "bw", 1, 0, 0.1, 1, 0, "", "9:silent", 0, "", 0, "")
		}, "outside graph order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build(); err == nil {
				t.Fatal("accepted")
			} else if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q missing %q", err, tc.errHas)
			}
		})
	}
}

func TestBuildScenarioCompilesFlags(t *testing.T) {
	s, err := buildScenario("clique:4", "crash", 1, 3, 0.2, 9, 4,
		"0,1,2,3", "2:silent", 0, "inline", 0, "bounded:bound=5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "crashapprox" { // legacy alias resolved
		t.Errorf("protocol = %q", s.Protocol)
	}
	if s.Seeds != 4 || s.Seed != 9 || s.Engine != "inline" {
		t.Errorf("scenario = %+v", s)
	}
	if s.Policy == nil || s.Policy.Name != "bounded" || s.Policy.Params["bound"] != 5 {
		t.Errorf("policy = %+v", s.Policy)
	}
	if len(s.Faults) != 1 || !reflect.DeepEqual(s.Faults[0], repro.FaultSpec{Node: 2, Kind: "silent"}) {
		t.Errorf("faults = %+v", s.Faults)
	}
	if !reflect.DeepEqual(s.Inputs, []float64{0, 1, 2, 3}) {
		t.Errorf("inputs = %v", s.Inputs)
	}
	// The compiled scenario round-trips through its canonical JSON.
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := repro.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round-trip drifted:\n got %+v\nwant %+v", back, s)
	}
}

func TestFaultSpecsSortedByNode(t *testing.T) {
	fl := map[int]repro.FaultSpec{
		3: {Node: 3, Kind: "noise", Params: map[string]float64{"amp": 2}},
		0: {Node: 0, Kind: "silent"},
	}
	specs := faultSpecs(fl)
	want := []repro.FaultSpec{
		{Node: 0, Kind: "silent"},
		{Node: 3, Kind: "noise", Params: map[string]float64{"amp": 2}},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("faultSpecs = %+v", specs)
	}
	if faultSpecs(nil) != nil {
		t.Error("empty map should give nil")
	}
}

// TestCatalogDefaults pins that every registered adversary with parameters
// has non-degenerate registry defaults (the old hand-maintained
// defaultParam switch is gone; the registry is the single source).
func TestCatalogDefaults(t *testing.T) {
	for _, kind := range repro.FaultKinds() {
		defs, err := repro.FaultDefaults(kind)
		if err != nil {
			t.Fatal(err)
		}
		if kind == "silent" {
			if len(defs) != 0 {
				t.Errorf("silent should have no params: %v", defs)
			}
			continue
		}
		if len(defs) == 0 {
			t.Errorf("kind %q has no registered params", kind)
		}
	}
}

func TestRuntimeFlagValidatesEagerly(t *testing.T) {
	// Every listed runtime is accepted; anything else fails by name with
	// the valid values — the same eager UX as -engine and -policy.
	for _, name := range repro.RuntimeNames() {
		if err := validateName("runtime", name, repro.RuntimeNames()); err != nil {
			t.Errorf("runtime %q rejected: %v", name, err)
		}
	}
	err := validateName("runtime", "warp", repro.RuntimeNames())
	if err == nil || !strings.Contains(err.Error(), "unknown runtime") ||
		!strings.Contains(err.Error(), "loopback") {
		t.Fatalf("want unknown-runtime error naming the valid values, got %v", err)
	}
}
