package main

import (
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestParseInputs(t *testing.T) {
	got, err := parseInputs("0, 1.5 ,2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 1.5, 2}) {
		t.Errorf("parseInputs = %v", got)
	}
	if _, err := parseInputs("1,2", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("1,x,3", 3); err == nil {
		t.Error("garbage accepted")
	}
	def, err := parseInputs("", 5)
	if err != nil || len(def) != 5 {
		t.Errorf("default inputs: %v %v", def, err)
	}
}

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("2:silent; 3:extreme:42")
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Type != repro.FaultSilent {
		t.Errorf("fault 2 = %+v", got[2])
	}
	if got[3].Type != repro.FaultExtreme || got[3].Param != 42 {
		t.Errorf("fault 3 = %+v", got[3])
	}
	// Defaults applied when param omitted.
	def, err := parseFaults("1:crash")
	if err != nil || def[1].Param != 20 {
		t.Errorf("crash default: %+v %v", def, err)
	}
	for _, bad := range []string{"x:silent", "1", "1:nope", "1:crash:x"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) should fail", bad)
		}
	}
	if got, err := parseFaults(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := parsePolicy(""); err != nil || p != nil {
		t.Errorf("empty policy: %v %v", p, err)
	}
	p, err := parsePolicy("lifo")
	if err != nil || p.Name != "lifo" || p.Params != nil {
		t.Errorf("lifo: %+v %v", p, err)
	}
	p, err = parsePolicy("bounded:bound=8")
	if err != nil || p.Name != "bounded" || p.Params["bound"] != 8 {
		t.Errorf("bounded: %+v %v", p, err)
	}
	for _, bad := range []string{"warp", "bounded:bound", "bounded:bound=x"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) should fail", bad)
		}
	}
	// Unknown names must mention the valid values.
	if _, err := parsePolicy("warp"); err == nil || !strings.Contains(err.Error(), "valid values are") {
		t.Errorf("unfriendly policy error: %v", err)
	}
}

func TestBuildScenarioValidatesEagerly(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*repro.Scenario, error)
		errHas string
	}{
		{"bad protocol", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "paxos", 1, 0, 0.1, 1, 0, "", "", 0, "", "")
		}, "valid values are"},
		{"bad engine", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "bw", 1, 0, 0.1, 1, 0, "", "", 0, "quantum", "")
		}, "valid values are"},
		{"bad graph", func() (*repro.Scenario, error) {
			return buildScenario("torus:4", "bw", 1, 0, 0.1, 1, 0, "", "", 0, "", "")
		}, "unknown spec"},
		{"bad fault node", func() (*repro.Scenario, error) {
			return buildScenario("fig1a", "bw", 1, 0, 0.1, 1, 0, "", "9:silent", 0, "", "")
		}, "outside graph order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build(); err == nil {
				t.Fatal("accepted")
			} else if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q missing %q", err, tc.errHas)
			}
		})
	}
}

func TestBuildScenarioCompilesFlags(t *testing.T) {
	s, err := buildScenario("clique:4", "crash", 1, 3, 0.2, 9, 4,
		"0,1,2,3", "2:silent", 0, "inline", "bounded:bound=5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "crashapprox" { // legacy alias resolved
		t.Errorf("protocol = %q", s.Protocol)
	}
	if s.Seeds != 4 || s.Seed != 9 || s.Engine != "inline" {
		t.Errorf("scenario = %+v", s)
	}
	if s.Policy == nil || s.Policy.Name != "bounded" || s.Policy.Params["bound"] != 5 {
		t.Errorf("policy = %+v", s.Policy)
	}
	if len(s.Faults) != 1 || s.Faults[0] != (repro.FaultSpec{Node: 2, Kind: "silent"}) {
		t.Errorf("faults = %+v", s.Faults)
	}
	if !reflect.DeepEqual(s.Inputs, []float64{0, 1, 2, 3}) {
		t.Errorf("inputs = %v", s.Inputs)
	}
	// The compiled scenario round-trips through its canonical JSON.
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := repro.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round-trip drifted:\n got %+v\nwant %+v", back, s)
	}
}

func TestFaultSpecsSortedByNode(t *testing.T) {
	fl := map[int]repro.Fault{
		3: {Type: repro.FaultNoise, Param: 2},
		0: {Type: repro.FaultSilent},
	}
	specs := faultSpecs(fl)
	want := []repro.FaultSpec{
		{Node: 0, Kind: "silent"},
		{Node: 3, Kind: "noise", Param: 2},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("faultSpecs = %+v", specs)
	}
	if faultSpecs(nil) != nil {
		t.Error("empty map should give nil")
	}
}

func TestDefaultParams(t *testing.T) {
	kinds := []repro.FaultType{
		repro.FaultSilent, repro.FaultCrash, repro.FaultExtreme,
		repro.FaultEquivocate, repro.FaultTamper, repro.FaultNoise,
	}
	for _, k := range kinds {
		p := defaultParam(k)
		if k != repro.FaultSilent && p == 0 {
			t.Errorf("kind %d has zero default param", k)
		}
	}
}

func TestRuntimeFlagValidatesEagerly(t *testing.T) {
	// Every listed runtime is accepted; anything else fails by name with
	// the valid values — the same eager UX as -engine and -policy.
	for _, name := range repro.RuntimeNames() {
		if err := validateName("runtime", name, repro.RuntimeNames()); err != nil {
			t.Errorf("runtime %q rejected: %v", name, err)
		}
	}
	err := validateName("runtime", "warp", repro.RuntimeNames())
	if err == nil || !strings.Contains(err.Error(), "unknown runtime") ||
		!strings.Contains(err.Error(), "loopback") {
		t.Fatalf("want unknown-runtime error naming the valid values, got %v", err)
	}
}
