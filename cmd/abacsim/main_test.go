package main

import (
	"reflect"
	"testing"

	"repro"
)

func TestParseInputs(t *testing.T) {
	got, err := parseInputs("0, 1.5 ,2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 1.5, 2}) {
		t.Errorf("parseInputs = %v", got)
	}
	if _, err := parseInputs("1,2", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("1,x,3", 3); err == nil {
		t.Error("garbage accepted")
	}
	def, err := parseInputs("", 5)
	if err != nil || len(def) != 5 {
		t.Errorf("default inputs: %v %v", def, err)
	}
}

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("2:silent; 3:extreme:42")
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Type != repro.FaultSilent {
		t.Errorf("fault 2 = %+v", got[2])
	}
	if got[3].Type != repro.FaultExtreme || got[3].Param != 42 {
		t.Errorf("fault 3 = %+v", got[3])
	}
	// Defaults applied when param omitted.
	def, err := parseFaults("1:crash")
	if err != nil || def[1].Param != 20 {
		t.Errorf("crash default: %+v %v", def, err)
	}
	for _, bad := range []string{"x:silent", "1", "1:nope", "1:crash:x"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) should fail", bad)
		}
	}
	if got, err := parseFaults(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
}

func TestDefaultParams(t *testing.T) {
	kinds := []repro.FaultType{
		repro.FaultSilent, repro.FaultCrash, repro.FaultExtreme,
		repro.FaultEquivocate, repro.FaultTamper, repro.FaultNoise,
	}
	for _, k := range kinds {
		p := defaultParam(k)
		if k != repro.FaultSilent && p == 0 {
			t.Errorf("kind %d has zero default param", k)
		}
	}
}
