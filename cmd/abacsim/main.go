// Command abacsim runs one of the repository's consensus protocols on a
// chosen graph under a chosen adversary and reports outputs, agreement
// spread, validity and message accounting.
//
// Usage:
//
//	abacsim -graph fig1a -algo bw -f 1 -eps 0.25 -inputs 0,4,1,3,2 -fault 2:silent
//	abacsim -graph clique:4 -algo aad -inputs 0,1,2,3
//	abacsim -graph circulant:5:1,2 -algo crash -fault 4:crash:10
//	abacsim -graph fig1b-analog -algo iterative -inputs 0,0,0,0,1,1,1,1
//	abacsim -graph clique:3 -algo necessity -f 1
//	abacsim -graph fig1a -algo bw -seeds 32 -workers 8   # parallel seed sweep
//	abacsim -graph fig1a -algo bw -engine goroutine      # alternate engine
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abacsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		spec    = flag.String("graph", "fig1a", "graph spec (see graphcheck)")
		algo    = flag.String("algo", "bw", "protocol: bw | aad | crash | iterative | necessity")
		f       = flag.Int("f", 1, "fault bound")
		k       = flag.Float64("k", 0, "a-priori input range bound (default: max input)")
		eps     = flag.Float64("eps", 0.1, "agreement parameter")
		seed    = flag.Int64("seed", 1, "asynchrony schedule seed")
		inputs  = flag.String("inputs", "", "comma-separated inputs (default: i mod 4)")
		faults  = flag.String("fault", "", "semicolon-separated faults: node:kind[:param], kinds: silent,crash,extreme,equivocate,tamper,noise")
		rounds  = flag.Int("rounds", 0, "round override for the iterative baseline")
		history = flag.Bool("history", false, "print per-round value histories")
		engine  = flag.String("engine", "", "execution engine: inline (default) | goroutine")
		seeds   = flag.Int("seeds", 1, "run this many consecutive seeds (a seed sweep when > 1)")
		workers = flag.Int("workers", 0, "worker pool size for -seeds > 1 (0 = one per CPU, 1 = sequential)")
	)
	flag.Parse()

	g, err := repro.NamedGraph(*spec)
	if err != nil {
		return err
	}

	if *algo == "necessity" {
		if *seeds > 1 || *engine != "" {
			return fmt.Errorf("-seeds and -engine do not apply to -algo necessity")
		}
		res, err := repro.RunNecessity(g, *f, maxf(*k, 1), *eps, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	}

	in, err := parseInputs(*inputs, g.N())
	if err != nil {
		return err
	}
	fl, err := parseFaults(*faults)
	if err != nil {
		return err
	}
	opts := repro.Options{F: *f, K: *k, Eps: *eps, Seed: *seed, Faults: fl, Rounds: *rounds,
		Engine: *engine}

	var run repro.RunFunc
	switch *algo {
	case "bw":
		run = repro.RunBW
	case "aad":
		run = repro.RunAAD
	case "crash":
		run = repro.RunCrashApprox
	case "iterative":
		run = repro.RunIterative
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	if *seeds > 1 {
		return runSeedSweep(run, g, in, opts, *algo, *seeds, *workers)
	}

	res, err := run(g, in, opts)
	if err != nil {
		return err
	}

	fmt.Printf("graph: %s, algo: %s, f=%d, eps=%g, seed=%d\n", g, *algo, *f, *eps, *seed)
	fmt.Printf("inputs: %v\n", in)
	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  node %2d -> %.6g\n", id, res.Outputs[id])
	}
	fmt.Printf("decided: %v, spread: %.6g, converged(<%g): %v, validity: %v\n",
		res.Decided, res.Spread, *eps, res.Converged, res.ValidityOK)
	fmt.Printf("deliveries: %d, sends: %d, by kind: %v\n", res.Steps, res.MessagesSent, res.ByKind)
	if *history {
		for _, id := range ids {
			fmt.Printf("  history %2d: %v\n", id, res.Histories[id])
		}
	}
	return nil
}

// runSeedSweep executes the chosen protocol across consecutive seeds on a
// worker pool and prints one line per seed plus an aggregate.
func runSeedSweep(run repro.RunFunc, g *repro.Graph, in []float64, opts repro.Options,
	algo string, seeds, workers int) error {
	results, err := repro.RunSeeds(run, g, in, opts, seeds, workers)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s, algo: %s, f=%d, eps=%g, seeds=%d..%d, workers=%d\n",
		g, algo, opts.F, opts.Eps, opts.Seed, opts.Seed+int64(seeds)-1, workers)
	converged, maxSpread, totalMsgs := 0, 0.0, 0
	for i, res := range results {
		if res.Converged {
			converged++
		}
		if res.Spread > maxSpread {
			maxSpread = res.Spread
		}
		totalMsgs += res.MessagesSent
		fmt.Printf("  seed %-6d converged=%-5v spread=%-10.6g validity=%-5v sends=%d\n",
			opts.Seed+int64(i), res.Converged, res.Spread, res.ValidityOK, res.MessagesSent)
	}
	fmt.Printf("converged: %d/%d, max spread: %.6g, total sends: %d\n",
		converged, seeds, maxSpread, totalMsgs)
	return nil
}

func parseInputs(s string, n int) ([]float64, error) {
	out := make([]float64, n)
	if s == "" {
		for i := range out {
			out[i] = float64(i % 4)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%d inputs for %d nodes", len(parts), n)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

var faultKinds = map[string]repro.FaultType{
	"silent":     repro.FaultSilent,
	"crash":      repro.FaultCrash,
	"extreme":    repro.FaultExtreme,
	"equivocate": repro.FaultEquivocate,
	"tamper":     repro.FaultTamper,
	"noise":      repro.FaultNoise,
}

func parseFaults(s string) (map[int]repro.Fault, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]repro.Fault)
	for _, item := range strings.Split(s, ";") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault %q: want node:kind[:param]", item)
		}
		node, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fault %q: bad node: %w", item, err)
		}
		kind, ok := faultKinds[parts[1]]
		if !ok {
			return nil, fmt.Errorf("fault %q: unknown kind %q", item, parts[1])
		}
		fl := repro.Fault{Type: kind, Param: defaultParam(kind)}
		if len(parts) > 2 {
			fl.Param, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("fault %q: bad param: %w", item, err)
			}
		}
		out[node] = fl
	}
	return out, nil
}

func defaultParam(kind repro.FaultType) float64 {
	switch kind {
	case repro.FaultCrash:
		return 20
	case repro.FaultExtreme:
		return 1e9
	case repro.FaultEquivocate:
		return 0.5
	case repro.FaultTamper:
		return 100
	case repro.FaultNoise:
		return 10
	default:
		return 0
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
