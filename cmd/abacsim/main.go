// Command abacsim runs one of the repository's consensus protocols on a
// chosen graph under a chosen adversary and schedule, and reports outputs,
// agreement spread, validity and message accounting. Flag runs and scenario
// files share one engine: the flags are compiled into a repro.Scenario, so
// everything the CLI can do, a JSON scenario can express — and replay.
//
// Usage:
//
//	abacsim -graph fig1a -algo bw -f 1 -eps 0.25 -inputs 0,4,1,3,2 -fault 2:silent
//	abacsim -graph clique:4 -algo aad -inputs 0,1,2,3
//	abacsim -graph circulant:5:1,2 -algo crashapprox -fault 4:crash:10
//	abacsim -graph fig1a -algo bw -fault "1:crash:after=8,finalSends=2+noise:amp=25"  # composed adversary
//	abacsim -graph fig1b-analog -algo iterative -inputs 0,0,0,0,1,1,1,1
//	abacsim -graph clique:3 -algo necessity -f 1
//	abacsim -graph fig1a -algo bw -seeds 32 -workers 8   # parallel seed sweep
//	abacsim -graph fig1a -algo bw -engine goroutine      # alternate engine
//	abacsim -graph torus:16:16 -algo bw -policy fifo -engine parallel -engine-workers 4  # multi-core delivery
//	abacsim -graph fig1a -algo bw -policy lifo           # adversarial schedule
//	abacsim -graph fig1a -algo bw -policy bounded:bound=8
//	abacsim -graph fig1a -algo bw -runtime loopback      # live node cluster, in-process
//	abacsim -graph fig1a -algo bw -runtime tcp           # live node cluster, real sockets
//	abacsim -scenario run.json                           # declarative run spec
//	abacsim -scenario run.json -save                     # print canonical JSON
//	abacsim -graph fig1a -algo bw -emit jsonl            # stream events as JSONL
//	abacsim -list                                        # registered names
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abacsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		spec     = flag.String("graph", "fig1a", "graph spec (see -list)")
		algo     = flag.String("algo", "bw", "protocol (see -list) or: necessity")
		f        = flag.Int("f", 1, "fault bound")
		k        = flag.Float64("k", 0, "a-priori input range bound (default: max |input|)")
		eps      = flag.Float64("eps", 0.1, "agreement parameter")
		seed     = flag.Int64("seed", 1, "asynchrony schedule seed")
		inputs   = flag.String("inputs", "", "comma-separated inputs (default: i mod 4)")
		faults   = flag.String("fault", "", "semicolon-separated faults: node:kind[:param] (kinds: see -list)")
		rounds   = flag.Int("rounds", 0, "round override for the iterative baseline")
		history  = flag.Bool("history", false, "print per-round value histories")
		engine   = flag.String("engine", "", "execution engine (see -list)")
		eworkers = flag.Int("engine-workers", 0, "worker count for engines that take one, e.g. parallel (0 = one per CPU)")
		policy   = flag.String("policy", "", "delivery policy name[:key=val,...], e.g. lifo or bounded:bound=8 (see -list)")
		seeds    = flag.Int("seeds", 0, "run this many consecutive seeds (a seed sweep when > 1)")
		workers  = flag.Int("workers", 0, "worker pool size for seed sweeps (0 = one per CPU, 1 = sequential)")
		scenario = flag.String("scenario", "", "run a JSON scenario file instead of assembling one from flags")
		save     = flag.Bool("save", false, "print the run's canonical scenario JSON instead of executing it")
		emit     = flag.String("emit", "", "stream execution events to stdout: jsonl")
		runtime  = flag.String("runtime", "", "execution runtime: sim (default, deterministic simulator) | loopback | tcp (live node cluster; see -list)")
		list     = flag.Bool("list", false, "list registered protocols, policies, engines, runtimes, fault kinds and graph specs")
	)
	flag.Parse()

	if *list {
		printCatalog()
		return nil
	}
	if *emit != "" && *emit != "jsonl" {
		return fmt.Errorf("unknown -emit format %q (valid values are: [jsonl])", *emit)
	}
	if *runtime != "" {
		if err := validateName("runtime", *runtime, repro.RuntimeNames()); err != nil {
			return err
		}
	}

	// An interrupt cancels cluster runs immediately and seed sweeps between
	// runs, instead of leaving them unkillable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var s *repro.Scenario
	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			return err
		}
		if s, err = repro.ParseScenario(data); err != nil {
			return err
		}
		if err := applyOverrides(s, *seed, *seeds, *engine, *eworkers); err != nil {
			return err
		}
	} else {
		if *algo == "necessity" {
			if *seeds > 1 || *engine != "" || *eworkers != 0 || *policy != "" || *emit != "" || *runtime != "" {
				return fmt.Errorf("-seeds, -engine, -engine-workers, -policy, -emit and -runtime do not apply to -algo necessity")
			}
			g, err := repro.NamedGraph(*spec)
			if err != nil {
				return err
			}
			res, err := repro.RunNecessity(g, *f, maxf(*k, 1), *eps, *seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			return nil
		}
		var err error
		if s, err = buildScenario(*spec, *algo, *f, *k, *eps, *seed, *seeds,
			*inputs, *faults, *rounds, *engine, *eworkers, *policy); err != nil {
			return err
		}
	}

	if *save {
		data, err := s.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if s.Seeds > 1 {
		if *emit != "" {
			return fmt.Errorf("-emit applies to single runs, not seed sweeps")
		}
		if *runtime != "" && *runtime != repro.RuntimeSim {
			return fmt.Errorf("-runtime %s executes single runs; seed sweeps run on the simulator (drop -seeds or -runtime)", *runtime)
		}
		return runSeedSweep(ctx, *s, *workers)
	}
	return runSingle(ctx, *s, *runtime, *emit == "jsonl", *history)
}

// applyOverrides lets explicitly passed -seed/-seeds/-engine flags override
// the corresponding scenario-file fields, so one file serves many seeds and
// engines. Any other run-shaping flag passed alongside -scenario is an
// error: silently ignoring, say, -policy would replay the wrong schedule.
func applyOverrides(s *repro.Scenario, seed int64, seeds int, engine string, engineWorkers int) error {
	var clash []string
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "seed":
			s.Seed = seed
		case "seeds":
			s.Seeds = seeds
		case "engine":
			s.Engine = engine
		case "engine-workers":
			s.EngineWorkers = engineWorkers
		case "graph", "algo", "f", "k", "eps", "inputs", "fault", "rounds", "policy":
			clash = append(clash, "-"+fl.Name)
		}
	})
	if len(clash) > 0 {
		return fmt.Errorf("%s cannot be combined with -scenario: edit the file instead (only -seed, -seeds, -engine and -engine-workers override it)",
			strings.Join(clash, ", "))
	}
	return nil
}

// buildScenario compiles the imperative flags into a declarative Scenario.
// The closing Validate checks every name eagerly — protocol, engine, graph,
// policy, fault kinds — so errors carry the valid values instead of
// surfacing from deep inside the simulator.
func buildScenario(spec, algo string, f int, k, eps float64, seed int64, seeds int,
	inputs, faults string, rounds int, engine string, engineWorkers int, policy string) (*repro.Scenario, error) {
	if algo == "crash" {
		algo = "crashapprox" // legacy alias from earlier releases
	}
	s := &repro.Scenario{
		Graph: spec, Protocol: algo,
		F: f, K: k, Eps: eps, Seed: seed, Seeds: seeds,
		Engine: engine, EngineWorkers: engineWorkers, Rounds: rounds,
	}
	var err error
	if s.Policy, err = parsePolicy(policy); err != nil {
		return nil, err
	}
	if inputs != "" {
		g, err := repro.NamedGraph(spec)
		if err != nil {
			return nil, err
		}
		if s.Inputs, err = parseInputs(inputs, g.N()); err != nil {
			return nil, err
		}
	}
	fl, err := parseFaults(faults)
	if err != nil {
		return nil, err
	}
	s.Faults = faultSpecs(fl)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func validateName(what, name string, valid []string) error {
	for _, v := range valid {
		if name == v {
			return nil
		}
	}
	return fmt.Errorf("unknown %s %q (valid values are: %v)", what, name, valid)
}

// parsePolicy parses "name" or "name:key=val,key=val" into a PolicySpec,
// validating the name and params against the registry.
func parsePolicy(s string) (*repro.PolicySpec, error) {
	if s == "" {
		return nil, nil
	}
	name, rest, hasParams := strings.Cut(s, ":")
	if err := validateName("policy", name, repro.Policies()); err != nil {
		return nil, err
	}
	spec := &repro.PolicySpec{Name: name}
	if hasParams {
		spec.Params = map[string]float64{}
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("policy param %q: want key=value", kv)
			}
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("policy param %q: bad value: %w", kv, err)
			}
			spec.Params[strings.TrimSpace(key)] = x
		}
	}
	return spec, nil
}

// faultSpecs converts the parsed fault map to the scenario list form, in
// node order.
func faultSpecs(fl map[int]repro.FaultSpec) []repro.FaultSpec {
	if len(fl) == 0 {
		return nil
	}
	nodes := make([]int, 0, len(fl))
	for node := range fl {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	out := make([]repro.FaultSpec, 0, len(fl))
	for _, node := range nodes {
		out = append(out, fl[node])
	}
	return out
}

func printCatalog() {
	fmt.Println("protocols:")
	for _, info := range repro.ProtocolCatalog() {
		fmt.Printf("  %-13s [%s, %s decision]", info.Name, info.Tier, info.Shape)
		if info.Doc != "" {
			fmt.Printf(" %s", info.Doc)
		}
		fmt.Println()
	}
	fmt.Println("policies:")
	for _, name := range repro.Policies() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("engines:")
	for _, info := range repro.EngineCatalog() {
		fmt.Printf("  %-13s %s\n", info.Name, info.Doc)
		if info.Workers {
			fmt.Printf("  %13s params: -engine-workers N (0 = one per CPU)\n", "")
		}
	}
	fmt.Println("runtimes:")
	for _, name := range repro.RuntimeNames() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("adversaries (fault kinds):")
	for _, name := range repro.FaultKinds() {
		defs, _ := repro.FaultDefaults(name)
		primary, doc, _ := repro.FaultPrimary(name)
		fmt.Printf("  %-13s %s\n", name, doc)
		if len(defs) > 0 {
			fmt.Printf("  %13s params: %s (scalar sets %q)\n", "", renderParams(defs), primary)
		}
	}
	fmt.Println("link fault kinds:")
	for _, name := range repro.LinkFaultKinds() {
		defs, doc, _ := repro.LinkFaultDefaults(name)
		fmt.Printf("  %-13s %s\n", name, doc)
		if len(defs) > 0 {
			fmt.Printf("  %13s params: %s\n", "", renderParams(defs))
		}
	}
	fmt.Println("graphs:")
	for _, form := range repro.NamedGraphSpecs() {
		fmt.Printf("  %s\n", form)
	}
}

// renderParams formats a params map as sorted key=value pairs.
func renderParams(defs map[string]float64) string {
	keys := make([]string, 0, len(defs))
	for k := range defs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, defs[k])
	}
	return strings.Join(parts, " ")
}

// runSingle executes one scenario on the selected runtime, optionally
// streaming events as JSONL before the summary.
func runSingle(ctx context.Context, s repro.Scenario, runtime string, jsonl, history bool) error {
	g, in, err := s.Materialize()
	if err != nil {
		return err
	}
	var res *repro.Result
	var obs repro.Observer
	flushErr := func() error { return nil }
	if jsonl {
		obs, flushErr = repro.JSONLObserver(os.Stdout)
	}
	if res, err = s.RunOnObserved(ctx, runtime, obs); err != nil {
		return err
	}
	if err := flushErr(); err != nil {
		return err
	}

	policy := "random"
	if s.Policy != nil {
		policy = s.Policy.Name
	}
	if runtime == "" {
		runtime = repro.RuntimeSim
	}
	fmt.Printf("graph: %s, algo: %s, f=%d, eps=%g, seed=%d, policy=%s, runtime=%s\n",
		g, s.Protocol, orDefault(s.F, 1), orDefaultF(s.Eps, 0.1), s.Seed, policy, runtime)
	fmt.Printf("inputs: %v\n", in)
	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  node %2d -> %.6g", id, res.Outputs[id])
		if vec, ok := res.Vectors[id]; ok {
			origins := make([]int, 0, len(vec))
			for o := range vec {
				origins = append(origins, o)
			}
			sort.Ints(origins)
			fmt.Printf("  subset{")
			for i, o := range origins {
				if i > 0 {
					fmt.Printf(", ")
				}
				fmt.Printf("%d:%g", o, vec[o])
			}
			fmt.Printf("}")
		}
		fmt.Println()
	}
	fmt.Printf("decided: %v, spread: %.6g, converged(<%g): %v, validity: %v\n",
		res.Decided, res.Spread, orDefaultF(s.Eps, 0.1), res.Converged, res.ValidityOK)
	fmt.Printf("deliveries: %d, sends: %d, by kind: %v\n", res.Steps, res.MessagesSent, res.ByKind)
	if ls := res.LinkStats; ls != (repro.LinkFaultStats{}) {
		fmt.Printf("link faults: dropped %d, duplicated %d, delayed %d\n", ls.Dropped, ls.Duplicated, ls.Delayed)
	}
	if history {
		for _, id := range ids {
			fmt.Printf("  history %2d: %v\n", id, res.Histories[id])
		}
	}
	return nil
}

// runSeedSweep executes the scenario across its consecutive seeds on a
// worker pool and prints one line per seed plus an aggregate.
func runSeedSweep(ctx context.Context, s repro.Scenario, workers int) error {
	results, err := s.RunBatch(ctx, workers)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s, algo: %s, f=%d, eps=%g, seeds=%d..%d, workers=%d\n",
		s.Graph, s.Protocol, orDefault(s.F, 1), orDefaultF(s.Eps, 0.1),
		s.Seed, s.Seed+int64(s.Seeds)-1, workers)
	converged, maxSpread, totalMsgs := 0, 0.0, 0
	for i, res := range results {
		if res.Converged {
			converged++
		}
		if res.Spread > maxSpread {
			maxSpread = res.Spread
		}
		totalMsgs += res.MessagesSent
		fmt.Printf("  seed %-6d converged=%-5v spread=%-10.6g validity=%-5v sends=%d\n",
			s.Seed+int64(i), res.Converged, res.Spread, res.ValidityOK, res.MessagesSent)
	}
	fmt.Printf("converged: %d/%d, max spread: %.6g, total sends: %d\n",
		converged, s.Seeds, maxSpread, totalMsgs)
	return nil
}

// orDefault resolves the displayed fault bound: 0 means the default,
// repro.FZero means an explicit zero.
func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	if v == repro.FZero {
		return 0
	}
	return v
}

func orDefaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

func parseInputs(s string, n int) ([]float64, error) {
	out := make([]float64, n)
	if s == "" {
		for i := range out {
			out[i] = float64(i % 4)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%d inputs for %d nodes", len(parts), n)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseFaults parses the -fault grammar: semicolon-separated items, each
//
//	node:kind                       registered defaults
//	node:kind:3.5                   scalar sets the strategy's primary param
//	node:kind:key=val,key=val       named params
//	node:kind[:args]+kind[:args]    composed mutator layers
//
// Scalars are folded into the primary param immediately, so parsed specs
// are already in the canonical (params-map) form.
func parseFaults(s string) (map[int]repro.FaultSpec, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]repro.FaultSpec)
	for _, item := range strings.Split(s, ";") {
		layers := splitLayers(strings.TrimSpace(item))
		head := strings.SplitN(layers[0], ":", 3)
		if len(head) < 2 {
			return nil, fmt.Errorf("fault %q: want node:kind[:param|:key=val,...][+kind[:...]]", item)
		}
		node, err := strconv.Atoi(head[0])
		if err != nil {
			return nil, fmt.Errorf("fault %q: bad node: %w", item, err)
		}
		// Unknown kinds fail here, at flag-parse time, in every argument
		// form — the same eager UX as -engine and -policy.
		if _, err := repro.FaultDefaults(head[1]); err != nil {
			return nil, fmt.Errorf("fault %q: %w", item, err)
		}
		fl := repro.FaultSpec{Node: node, Kind: head[1]}
		if len(head) > 2 {
			if fl.Params, err = parseFaultParams(head[1], head[2]); err != nil {
				return nil, fmt.Errorf("fault %q: %w", item, err)
			}
		}
		for _, layer := range layers[1:] {
			kind, args, hasArgs := strings.Cut(layer, ":")
			if _, err := repro.FaultDefaults(kind); err != nil {
				return nil, fmt.Errorf("fault %q: %w", item, err)
			}
			m := repro.MutationSpec{Kind: kind}
			if hasArgs {
				if m.Params, err = parseFaultParams(kind, args); err != nil {
					return nil, fmt.Errorf("fault %q: %w", item, err)
				}
			}
			fl.Compose = append(fl.Compose, m)
		}
		out[node] = fl
	}
	return out, nil
}

// splitLayers splits one -fault item into its composed layers: a "+" only
// separates layers when it introduces a strategy name (the next rune is a
// letter), so exponent notation inside values — 1:extreme:1e+9,
// amp=2.5e+3 — stays intact.
func splitLayers(item string) []string {
	var out []string
	start := 0
	for i := 0; i < len(item); i++ {
		if item[i] == '+' && i+1 < len(item) &&
			(item[i+1] >= 'a' && item[i+1] <= 'z' || item[i+1] >= 'A' && item[i+1] <= 'Z') {
			out = append(out, item[start:i])
			start = i + 1
		}
	}
	return append(out, item[start:])
}

// parseFaultParams parses one layer's args: either a bare scalar (folded
// into the strategy's primary param) or a key=val list.
func parseFaultParams(kind, args string) (map[string]float64, error) {
	if !strings.Contains(args, "=") {
		x, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return nil, fmt.Errorf("bad param %q: %w", args, err)
		}
		primary, _, err := repro.FaultPrimary(kind)
		if err != nil {
			return nil, err
		}
		if primary == "" {
			return nil, fmt.Errorf("fault kind %q takes no scalar param", kind)
		}
		return map[string]float64{primary: x}, nil
	}
	params := map[string]float64{}
	for _, kv := range strings.Split(args, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault param %q: want key=value", kv)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("fault param %q: bad value: %w", kv, err)
		}
		params[strings.TrimSpace(key)] = x
	}
	return params, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
