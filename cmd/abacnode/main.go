// Command abacnode runs ONE vertex of a scenario as a live TCP node — the
// genuinely multi-process form of the cluster runtime. Every participating
// process loads the same scenario file, is told which vertex it is and
// where its peers listen, and the cluster executes the same protocol
// machines the simulator runs, over real sockets.
//
// A two-terminal run of a 2-clique (see README for the full walkthrough):
//
//	terminal A$ abacnode -scenario pair.json -id 0 \
//	              -peers "0=127.0.0.1:7000,1=127.0.0.1:7001"
//	terminal B$ abacnode -scenario pair.json -id 1 \
//	              -peers "0=127.0.0.1:7000,1=127.0.0.1:7001"
//
// Each process listens on its own entry of -peers (override with -listen),
// dials its out-neighbors — retrying until the peer is up, so start order
// does not matter — prints a JSON line when its vertex decides, keeps
// relaying for -linger afterwards (honest nodes serve their peers, not
// just themselves), then exits. Interrupt or -timeout ends it early.
//
// Usage:
//
//	abacnode -scenario run.json -id 0 -peers "0=host:port,1=host:port,..."
//	abacnode ... -listen 0.0.0.0:7000       # bind override (NAT, all-interfaces)
//	abacnode ... -listen-attempts 8         # port-collision fallback
//	abacnode ... -linger 10s -timeout 2m    # lifecycle knobs
//	abacnode ... -emit jsonl                # stream runtime events to stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abacnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioPath = flag.String("scenario", "", "JSON scenario file shared by every member process (required)")
		id           = flag.Int("id", -1, "this process's vertex id (required)")
		peersFlag    = flag.String("peers", "", `comma-separated vertex addresses: "0=host:port,1=host:port,..." (required)`)
		listen       = flag.String("listen", "", "bind address override (default: this vertex's -peers entry)")
		attempts     = flag.Int("listen-attempts", 1, "consecutive ports to try when the listen port is taken")
		linger       = flag.Duration("linger", 3*time.Second, "keep relaying this long after deciding, then exit")
		timeout      = flag.Duration("timeout", 0, "overall deadline (0 = run until decided+linger or interrupt)")
		emit         = flag.String("emit", "", "stream runtime events to stdout: jsonl")
	)
	flag.Parse()

	if *scenarioPath == "" {
		return fmt.Errorf("-scenario is required")
	}
	if *id < 0 {
		return fmt.Errorf("-id is required (this process's vertex)")
	}
	if *emit != "" && *emit != "jsonl" {
		return fmt.Errorf("unknown -emit format %q (valid values are: [jsonl])", *emit)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required")
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		return err
	}
	s, err := repro.ParseScenario(data)
	if err != nil {
		return err
	}

	bind := *listen
	if bind == "" {
		var ok bool
		if bind, ok = peers[*id]; !ok {
			return fmt.Errorf("no -peers entry for own id %d and no -listen override", *id)
		}
	}

	// A vertex the scenario marks faulty runs its adversary wrapper and —
	// depending on the kind — may legitimately never decide (silent, crash).
	// Such a process serves until -timeout or interrupt and exits cleanly.
	faultKind := ""
	for _, fl := range s.Faults {
		if fl.Node == *id {
			faultKind = fl.Kind
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var obs repro.Observer
	flushErr := func() error { return nil }
	if *emit == "jsonl" {
		obs, flushErr = repro.JSONLObserver(os.Stdout)
	}

	spec := repro.JoinSpec{
		Scenario:       *s,
		ID:             *id,
		Listen:         bind,
		ListenAttempts: *attempts,
		Peers:          peers,
		Observer:       obs,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "abacnode: vertex %d listening on %s (graph %s, protocol %s, peers %s)\n",
				*id, addr, s.Graph, s.Protocol, renderPeers(peers, *id))
			if faultKind != "" {
				fmt.Fprintf(os.Stderr, "abacnode: vertex %d runs the scenario's %q adversary; it serves until -timeout or interrupt (faulty vertices need not decide)\n",
					*id, faultKind)
			}
		},
		OnDecide: func(x float64) {
			fmt.Fprintf(os.Stderr, "abacnode: vertex %d decided %g; relaying for %s more\n", *id, x, *linger)
			// Deciding is not done: peers may still need our relays. Serve a
			// grace period, then leave.
			time.AfterFunc(*linger, cancel)
		},
	}

	report, err := repro.JoinCluster(runCtx, spec)
	if err != nil {
		return err
	}
	if err := flushErr(); err != nil {
		return err
	}
	line, err := json.Marshal(report)
	if err != nil {
		return err
	}
	fmt.Println(string(line))
	if !report.Decided && faultKind == "" {
		return fmt.Errorf("vertex %d exited undecided (interrupted or timed out before the protocol finished)", *id)
	}
	return nil
}

// parsePeers parses "0=host:port,1=host:port,..." into a vertex->address
// map, rejecting duplicates and malformed entries eagerly.
func parsePeers(s string) (map[int]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]string)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		idStr, addr, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", item)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return nil, fmt.Errorf("peer %q: bad vertex id: %w", item, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("peer %q: vertex id must be non-negative", item)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("peer %q: empty address", item)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("peer %q: vertex %d listed twice", item, id)
		}
		out[id] = addr
	}
	return out, nil
}

// renderPeers formats the peer map compactly for the startup log line.
func renderPeers(peers map[int]string, self int) string {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		if id != self {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d@%s", id, peers[id]))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}
