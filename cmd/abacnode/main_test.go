package main

import (
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=node2.local:9")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "127.0.0.1:7000", 1: "127.0.0.1:7001", 2: "node2.local:9"}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v", peers)
	}
	for id, addr := range want {
		if peers[id] != addr {
			t.Fatalf("peers[%d] = %q, want %q", id, peers[id], addr)
		}
	}
}

func TestParsePeersEmpty(t *testing.T) {
	peers, err := parsePeers("")
	if err != nil || peers != nil {
		t.Fatalf("empty: %v %v", peers, err)
	}
}

func TestParsePeersRejects(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0:127.0.0.1:7000", "want id=host:port"},
		{"x=127.0.0.1:7000", "bad vertex id"},
		{"-1=127.0.0.1:7000", "non-negative"},
		{"0=", "empty address"},
		{"0=a:1,0=b:2", "listed twice"},
	}
	for _, tc := range cases {
		if _, err := parsePeers(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parsePeers(%q): err = %v, want %q", tc.in, err, tc.want)
		}
	}
}

func TestRenderPeers(t *testing.T) {
	got := renderPeers(map[int]string{0: "a:1", 1: "b:2", 2: "c:3"}, 1)
	if got != "0@a:1 2@c:3" {
		t.Fatalf("renderPeers = %q", got)
	}
	if renderPeers(map[int]string{1: "b:2"}, 1) != "(none)" {
		t.Fatal("self-only peers should render (none)")
	}
}
