// Command abacload drives sustained load through a consensus-service
// fleet's client planes: closed-loop workers submit instances and wait for
// decisions, and the tool reports decisions/sec plus the fleet's
// backpressure accounting.
//
// Two modes:
//
//   - Against a running fleet (abacd processes): point -addrs at one or
//     more client planes.
//
//     $ abacload -addrs 127.0.0.1:8100,127.0.0.1:8101 -protocol acs \
//     -duration 5s -concurrency 16
//
//   - Self-hosted (-selfhost): spin up an in-process daemon fleet for the
//     scenario, drive it, and tear it down — the E16 throughput study.
//     With -bench, the result is written as a BENCH_5-schema report
//     (one cell per -protocols entry); -framebench appends the E16b
//     frame-path microbenchmark cells (ns/frame and allocs/frame for the
//     encode/write/read/queue-drain primitives); -dispatchbench appends
//     the E16c dispatch micro-cell (the daemon's batched dispatch→inbox
//     hand-off); -gomaxprocs "1,4" repeats the whole cell set per rung
//     with the workers column stamped — the multi-core sweep.
//
//     $ abacload -selfhost -protocols acs,bw -duration 3s \
//     -framebench -dispatchbench -gomaxprocs 1,4 -bench BENCH_7.json
//
// Output (both modes) is one JSON line per measured protocol.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abacload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrsFlag     = flag.String("addrs", "", "comma-separated client-plane addresses of a running fleet")
		selfhost      = flag.Bool("selfhost", false, "spin up an in-process fleet instead of dialing -addrs")
		scenarioPath  = flag.String("scenario", "", "scenario file for -selfhost (default: the built-in clique:8 service scenario)")
		protocolsF    = flag.String("protocols", "", "comma-separated protocols to measure (default: the scenario's / the daemon default)")
		duration      = flag.Duration("duration", 3*time.Second, "measurement window per protocol")
		concurrency   = flag.Int("concurrency", 0, "closed-loop workers (default: 2 per client plane)")
		benchOut      = flag.String("bench", "", "-selfhost only: write the result as a BENCH_5-schema report to this path")
		frameBench    = flag.Bool("framebench", false, "-selfhost only: append the E16b frame-path microbenchmark cells (ns/frame, allocs/frame)")
		dispatchBench = flag.Bool("dispatchbench", false, "-selfhost only: append the E16c dispatch micro-cell (ns/frame, allocs/frame through dispatch->inbox)")
		goMaxProcs    = flag.String("gomaxprocs", "", "-selfhost only: comma-separated GOMAXPROCS sweep (e.g. \"1,4\"); each rung stamps the cells' workers column")
	)
	flag.Parse()

	protocols := splitCSV(*protocolsF)
	ctx := context.Background()

	if *selfhost {
		cfg := experiments.ServiceBenchConfig{
			Protocols:     protocols,
			Duration:      *duration,
			Concurrency:   *concurrency,
			FrameBench:    *frameBench,
			DispatchBench: *dispatchBench,
		}
		for _, item := range splitCSV(*goMaxProcs) {
			gmp, err := strconv.Atoi(item)
			if err != nil || gmp < 1 {
				return fmt.Errorf("-gomaxprocs: %q is not a positive integer", item)
			}
			cfg.GoMaxProcs = append(cfg.GoMaxProcs, gmp)
		}
		if *scenarioPath != "" {
			data, err := os.ReadFile(*scenarioPath)
			if err != nil {
				return err
			}
			s, err := repro.ParseScenario(data)
			if err != nil {
				return err
			}
			cfg.Scenario = *s
		}
		report, err := experiments.RunServiceBench(ctx, cfg)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		for _, cell := range report.Runs {
			if err := enc.Encode(cell); err != nil {
				return err
			}
		}
		if *benchOut != "" {
			buf, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchOut, append(buf, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "abacload: wrote %s\n", *benchOut)
		}
		return nil
	}

	if *benchOut != "" {
		return fmt.Errorf("-bench requires -selfhost (a fleet-external run cannot claim the committed bench schema)")
	}
	if *frameBench {
		return fmt.Errorf("-framebench requires -selfhost (the micro cells belong in the bench report)")
	}
	if *dispatchBench {
		return fmt.Errorf("-dispatchbench requires -selfhost (the micro cells belong in the bench report)")
	}
	if *goMaxProcs != "" {
		return fmt.Errorf("-gomaxprocs requires -selfhost (it sweeps the in-process fleet)")
	}
	addrs := splitCSV(*addrsFlag)
	if len(addrs) == 0 {
		return fmt.Errorf("either -addrs or -selfhost is required")
	}
	if len(protocols) == 0 {
		protocols = []string{""} // daemon default
	}
	if *concurrency <= 0 {
		*concurrency = 2 * len(addrs)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, proto := range protocols {
		row, err := drive(ctx, addrs, proto, *duration, *concurrency)
		if err != nil {
			return err
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// loadRow is one measured protocol window against an external fleet.
type loadRow struct {
	Protocol    string  `json:"protocol,omitempty"`
	DurationMS  float64 `json:"durationMs"`
	Decisions   int64   `json:"decisions"`
	PerSec      float64 `json:"perSec"`
	Workers     int     `json:"workers"`
	Errors      int64   `json:"errors,omitempty"`
	QueueWaits  int64   `json:"queueWaits"`
	QueueShed   int64   `json:"queueShed"`
	PendingShed int64   `json:"pendingShed"`
}

func drive(ctx context.Context, addrs []string, proto string, window time.Duration, workers int) (loadRow, error) {
	stats := func() (waits, shed, pend int64, err error) {
		for _, addr := range addrs {
			cl, err := service.Dial(addr, 0)
			if err != nil {
				return 0, 0, 0, err
			}
			s, err := cl.Stats()
			cl.Close()
			if err != nil {
				return 0, 0, 0, err
			}
			waits += s.Queue.Waits
			shed += s.Queue.Shed
			pend += s.PendingShed
		}
		return waits, shed, pend, nil
	}
	w0, s0, p0, err := stats()
	if err != nil {
		return loadRow{}, err
	}

	wctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()
	var decisions, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		addr := addrs[w%len(addrs)]
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			cl, err := service.Dial(addr, 0)
			if err != nil {
				errs.Add(1)
				return
			}
			defer cl.Close()
			go func() {
				<-wctx.Done()
				cl.Close()
			}()
			for wctx.Err() == nil {
				if _, err := cl.SubmitWait(proto); err != nil {
					if wctx.Err() == nil {
						errs.Add(1)
					}
					return
				}
				decisions.Add(1)
			}
		}(addr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	w1, s1, p1, err := stats()
	if err != nil {
		return loadRow{}, err
	}
	row := loadRow{
		Protocol:    proto,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
		Decisions:   decisions.Load(),
		PerSec:      float64(decisions.Load()) / elapsed.Seconds(),
		Workers:     workers,
		Errors:      errs.Load(),
		QueueWaits:  w1 - w0,
		QueueShed:   s1 - s0,
		PendingShed: p1 - p0,
	}
	return row, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
