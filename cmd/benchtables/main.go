// Command benchtables regenerates every table and figure report of the
// reproduction (the EXPERIMENTS.md numbers): the Table 1 and Table 2
// condition equivalences, the Figure 1(a)/(b) claims, the Theorem 4
// sufficiency matrix, the Lemma 15 convergence series, the Theorem 18
// necessity construction, the baseline comparisons and the structural and
// scaling studies.
//
// Usage:
//
//	benchtables                     # run everything
//	benchtables table1 fig1b        # run selected experiments
//	benchtables -list               # list experiment names
//	benchtables -workers 4          # fan experiments across 4 workers
//	benchtables -engine goroutine   # run protocols on the goroutine engine
//	benchtables -json BENCH_0.json  # also record timings as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/prof"
)

// experiment is one catalog entry. run returns the rendered report and,
// for experiments that measure per-scenario cells (the exact tier), those
// cells; when such an experiment is the sole selection, -json records the
// cells as "runs" instead of the per-experiment timing (the BENCH_4
// generator). The two report forms are mutually exclusive by schema.
type experiment struct {
	name string
	desc string
	run  func(seed int64) (string, []experiments.BenchRun, error)
}

func catalog() []experiment {
	return []experiment{
		{"table1", "E1: undirected condition equivalences (Table 1)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep := experiments.Table1(8, seed)
			return rep.Render(), nil, nil
		}},
		{"table2", "E2: directed condition equivalences (Table 2, Theorem 17)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep := experiments.Table2(12, seed)
			return rep.Render(), nil, nil
		}},
		{"fig1a", "E3: Figure 1(a) claims + BW run", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunFig1a(seed)
			return rep.Render(), nil, err
		}},
		{"fig1b", "E4: Figure 1(b) claims (exhaustive f=2) + scaled BW run", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunFig1b(seed)
			return rep.Render(), nil, err
		}},
		{"sufficiency", "E5: Theorem 4 sufficiency matrix (graph x adversary)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunSufficiency(seed)
			return rep.Render(), nil, err
		}},
		{"sweep", "E5b: BW on random 3-reach digraphs with random adversaries", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunSweep(8, seed+1000)
			return rep.Render(), nil, err
		}},
		{"convergence", "E6: Lemma 15 per-round contraction", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunConvergence(seed)
			return rep.Render(), nil, err
		}},
		{"necessity", "E7: Theorem 18 necessity construction", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunNecessity(seed)
			return rep.Render(), nil, err
		}},
		{"aad", "E8: Abraham-Amit-Dolev baseline vs BW", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunAADComparison(seed)
			return rep.Render(), nil, err
		}},
		{"iterative", "E9: local iterative ablation", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunIterativeAblation(seed)
			return rep.Render(), nil, err
		}},
		{"kreach", "E10: k-reach hierarchy (Appendix A)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep := experiments.RunKReach()
			return rep.Render(), nil, nil
		}},
		{"structure", "E11: Theorems 5 and 12 structure checks", func(seed int64) (string, []experiments.BenchRun, error) {
			rep := experiments.RunStructure()
			return rep.Render(), nil, nil
		}},
		{"crashcell", "Table 2 crash/async cell (Theorem 2 algorithm)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunCrashCell(seed)
			return rep.Render(), nil, err
		}},
		{"scaling", "E12: BW cost growth on circulant family", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunScaling(seed)
			return rep.Render(), nil, err
		}},
		{"attackmatrix", "E13: protocol x adversary x graph attack matrix (registry-driven)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunAttackMatrix(seed)
			return rep.Render(), nil, err
		}},
		{"scale", "E14: scale-out study to n=128 (full ladder to the build's node limit: benchruntimes -suite scale)", func(seed int64) (string, []experiments.BenchRun, error) {
			// The default benchtables invocation runs every experiment, so
			// this entry caps the ladder at a seconds-scale size; the full
			// multi-minute, multi-GB run to n=1024 is regenerated explicitly
			// via `benchruntimes -suite scale -json BENCH_2.json`.
			rep, err := experiments.RunScaleExec(context.Background(), seed, experiments.DefaultExec, 128)
			return rep.Render(), nil, err
		}},
		{"exact", "E15: exact tier (aba, acs) x complete-graph families x the adversary matrix (sole selection + -json = BENCH_4)", func(seed int64) (string, []experiments.BenchRun, error) {
			rep, err := experiments.RunExact(seed)
			if err != nil {
				return "", nil, err
			}
			if !rep.AllPassed() {
				return "", nil, fmt.Errorf("exact matrix has failing cells:\n%s", rep.Render())
			}
			return rep.Render(), rep.BenchRuns(), nil
		}},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		seed       = flag.Int64("seed", 1, "base seed for all randomized pieces")
		engine     = flag.String("engine", "", "execution engine for protocol runs: inline (default) | goroutine | parallel")
		eworkers   = flag.Int("engine-workers", 0, "worker count for engines that take one, e.g. parallel (0 = one per CPU)")
		workers    = flag.Int("workers", 1, "run experiments on this many workers (0 = one per CPU); output order is fixed")
		jsonPath   = flag.String("json", "", "also write per-experiment timings to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
		}
	}()

	all := catalog()
	if *list {
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return nil
	}

	selected := all
	if args := flag.Args(); len(args) > 0 {
		byName := make(map[string]experiment, len(all))
		for _, e := range all {
			byName[e.name] = e
		}
		selected = selected[:0]
		for _, name := range args {
			e, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", name)
			}
			selected = append(selected, e)
		}
	}

	// Reports stay deterministic whatever the engine or fan-out; only the
	// wall-clock changes. -workers is one concurrency budget, not two
	// multiplying levels: with several experiments selected it fans the
	// experiments and the sweeps inside each stay sequential; with a single
	// experiment selected it goes to that experiment's internal fan-out.
	// -engine-workers is a separate, per-run budget (the parallel engine's
	// lanes); when both are active the engine clamps itself to a sweep
	// lane's fair CPU share instead of multiplying (par.NestedWorkers).
	// Set once, before any driver runs.
	inner := 1
	if len(selected) == 1 {
		inner = *workers
	}
	experiments.DefaultExec = experiments.Exec{Engine: *engine, EngineWorkers: *eworkers, Workers: inner}

	type outcome struct {
		text   string
		timing experiments.BenchRun
		cells  []experiments.BenchRun
	}
	// An interrupt stops the run between experiments instead of leaving a
	// long matrix unkillable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Experiments only share the read-only DefaultExec, so they fan across
	// the pool freely; par.Map returns them in catalog order, keeping the
	// printed report identical at any worker count.
	results, err := par.Map(ctx, *workers, len(selected), func(i int) (outcome, error) {
		e := selected[i]
		start := time.Now()
		out, cells, err := e.run(*seed)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", e.name, err)
		}
		elapsed := time.Since(start)
		return outcome{
			text:   fmt.Sprintf("%s\n  [%s took %v]\n", out, e.name, elapsed.Round(time.Millisecond)),
			timing: experiments.BenchRun{Name: e.name, Ms: float64(elapsed.Microseconds()) / 1000},
			cells:  cells,
		}, nil
	})
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r.text)
	}

	if *jsonPath != "" {
		// The shared BENCH schema (experiments.BenchReport): BENCH_0.json's
		// generator. Engine/Workers at report level are this process's
		// settings; the per-experiment cells carry name and ms.
		report := experiments.BenchReport{
			Engine: experiments.DefaultExec.Engine, Workers: *workers, Seed: *seed,
		}
		if report.Engine == "" {
			report.Engine = "inline"
		}
		// A sole selected experiment that measured per-scenario cells
		// records them as runs (BENCH_4); any other selection records the
		// per-experiment timings (BENCH_0). The schema forbids mixing the
		// two, so a multi-experiment selection never emits cells.
		if len(results) == 1 && len(results[0].cells) > 0 {
			report.Suite = selected[0].name
			report.Runs = results[0].cells
		} else {
			for _, r := range results {
				report.Experiments = append(report.Experiments, r.timing)
			}
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
