// Package repro is the public API of this repository: a reproduction of
// "Asynchronous Byzantine Approximate Consensus in Directed Networks"
// (Sakavalas, Tseng, Vaidya — PODC 2020).
//
// It exposes four layers:
//
//   - graph construction and the paper's topological conditions
//     (1-/2-/3-reach, the k-reach family, CCS/CCA/BCS, connectivity),
//   - protocol execution: the paper's BW algorithm (Byzantine,
//     asynchronous, directed — Theorem 4), the Abraham–Amit–Dolev clique
//     baseline, the crash-fault 2-reach algorithm and the local iterative
//     baseline — plus an exact-consensus tier on the reliable-broadcast
//     substrate: MMR asynchronous binary agreement ("aba") and BKR
//     agreement on a common subset ("acs", a vector decision) — all over
//     a deterministic simulator with registry-backed,
//     composable fault injection — named node adversaries (FaultKinds)
//     plus per-edge Byzantine link failures (LinkFaultKinds) — and
//     pluggable execution engines (a direct-call inline event loop by
//     default, a goroutine-per-node arrangement on request — both replay
//     the identical delivery schedule for a given seed),
//   - a live node runtime: the same protocol machines as real networked
//     nodes exchanging wire-encoded frames, in-process (Scenario.RunOn
//     with "loopback"), over local TCP sockets ("tcp"), or as genuinely
//     separate processes (JoinCluster / cmd/abacnode) — cross-runtime
//     conformance tests pin that cluster runs satisfy the same validity
//     and ε-agreement criteria as simulator runs,
//   - the Theorem 18 necessity construction, which exhibits a convergence
//     violation on any graph that fails 3-reach.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package repro

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/aad"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/adversary"
	"repro/internal/bw"
	"repro/internal/cond"
	"repro/internal/crashapprox"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/linkfault"
	"repro/internal/par"
	"repro/internal/seedmix"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Graph is a simple directed graph on nodes 0..n-1 (see internal/graph).
type Graph = graph.Graph

// NodeSet is a bitmask set of node IDs.
type NodeSet = graph.Set

// Path is a node sequence forming a directed walk.
type Path = graph.Path

// ReachWitness describes a violated reach condition.
type ReachWitness = cond.Witness

// NecessityResult is the outcome of the Theorem 18 construction.
type NecessityResult = adversary.NecessityResult

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// NamedGraph constructs a built-in graph from a spec string such as
// "clique:5", "fig1b" or "random:7:0.5:3"; see graph.Named for the full
// grammar.
func NamedGraph(spec string) (*Graph, error) { return graph.Named(spec) }

// NamedGraphSpecs lists the spec grammar NamedGraph accepts, one annotated
// form per line (for CLI help and catalogs).
func NamedGraphSpecs() []string { return graph.NamedSpecs() }

// Builders for the graphs used throughout the paper and the experiments.
var (
	Clique        = graph.Clique
	DirectedCycle = graph.DirectedCycle
	Wheel         = graph.Wheel
	Fig1a         = graph.Fig1a
	Fig1b         = graph.Fig1b
	Fig1bAnalog   = graph.Fig1bAnalog
	Circulant     = graph.Circulant
	RandomDigraph = graph.RandomDigraph
)

// ConditionReport collects every condition of the paper's Tables 1 and 2
// for one graph and fault bound.
type ConditionReport struct {
	N, M, F    int
	OneReach   bool
	TwoReach   bool
	ThreeReach bool
	CCS        bool
	CCA        bool
	BCS        bool
	// Witness3 is a 3-reach violation witness when ThreeReach is false.
	Witness3 *ReachWitness
	// Kappa is the vertex connectivity (meaningful for undirected graphs;
	// -1 for directed inputs).
	Kappa int
	// Certified reports whether the condition checkers actually ran. It is
	// false above CertLimit — the reach checkers enumerate pairs of
	// candidate fault sets, which is exponential in f and polynomially
	// explosive in n — in which case every condition field is false and
	// Note explains the skip. Callers showing results must surface Note
	// rather than presenting the unchecked falses as violations.
	Certified bool
	// Note carries a human-readable caveat: why certification was skipped,
	// or that the partition conditions were substituted by their proven
	// reach equivalents.
	Note string
}

// CheckConditions evaluates all conditions on g with fault bound f. The
// partition conditions enumerate 3^n assignments and are skipped (reported
// as the equivalent reach results) for n > PartitionLimit; above CertLimit
// the whole certification is skipped with an explicit Note — the scale
// experiments run graphs with orders far beyond what the exhaustive
// checkers can enumerate.
func CheckConditions(g *Graph, f int) ConditionReport {
	rep := ConditionReport{N: g.N(), M: g.M(), F: f, Kappa: -1}
	if g.N() > CertLimit {
		rep.Note = fmt.Sprintf("condition certification skipped: order %d exceeds CertLimit %d "+
			"(reach checkers enumerate C(n,<=f)^2 fault-set pairs)", g.N(), CertLimit)
		return rep
	}
	rep.Certified = true
	rep.OneReach, _ = cond.Check1Reach(g, f)
	rep.TwoReach, _ = cond.Check2Reach(g, f)
	var w *cond.Witness
	rep.ThreeReach, w = cond.Check3Reach(g, f)
	rep.Witness3 = w
	if g.N() <= PartitionLimit {
		rep.CCS, _ = cond.CheckCCS(g, f)
		rep.CCA, _ = cond.CheckCCA(g, f)
		rep.BCS, _ = cond.CheckBCS(g, f)
	} else {
		rep.CCS, rep.CCA, rep.BCS = rep.OneReach, rep.TwoReach, rep.ThreeReach
		rep.Note = fmt.Sprintf("partition conditions substituted by their reach equivalents (order %d > PartitionLimit %d)",
			g.N(), PartitionLimit)
	}
	if g.IsUndirected() {
		rep.Kappa = g.VertexConnectivity()
	}
	return rep
}

// PartitionLimit is the largest order for which CheckConditions runs the
// exponential partition-based checkers directly.
const PartitionLimit = 9

// CertLimit is the largest order for which CheckConditions runs at all;
// beyond it the report is returned uncertified with a Note. 64 keeps the
// checkers exact on every graph the paper's figures use while letting the
// scale experiments skip certification deliberately and visibly.
const CertLimit = 64

// Check3Reach verifies the paper's tight condition (Definition 3) and
// returns a violation witness when it fails.
func Check3Reach(g *Graph, f int) (bool, *ReachWitness) { return cond.Check3Reach(g, f) }

// CheckKReach verifies the generalized k-reach condition (Definition 20).
func CheckKReach(g *Graph, k, f int) (bool, *ReachWitness) { return cond.CheckKReach(g, k, f) }

// CheckRobustness verifies (r, s)-robustness, the tight condition for the
// *local iterative* algorithms of the paper's related work [13]. Strictly
// stronger than 3-reach: see experiment E9 for the separation.
func CheckRobustness(g *Graph, r, s int) bool {
	ok, _ := cond.CheckRobustness(g, r, s)
	return ok
}

// Fault configures one faulty node: a registered adversary strategy by
// name, its named parameters, and optional composed mutator layers. It is
// the imperative (Options) twin of the scenario-level FaultSpec. Strategy
// names, parameter names and composition rules are validated when handlers
// are built — an unknown kind or param is a hard error, never a silent
// fall-back to honest behavior.
type Fault struct {
	// Kind names a registered adversary strategy; see FaultKinds.
	Kind string
	// Params carries the strategy's named knobs (e.g. {"after": 12,
	// "finalSends": 2} for "crash"). Omitted params take the registered
	// defaults; unknown names are rejected.
	Params map[string]float64
	// Compose layers additional mutator strategies onto the base: when the
	// base is itself a mutator strategy they share one traffic rewriter
	// (base first); when the base is a wrapper such as "crash", the
	// composed mutators corrupt the node's traffic until the wrapper kills
	// it.
	Compose []Mutation
}

// Mutation is one composed mutator layer of a Fault.
type Mutation struct {
	Kind   string
	Params map[string]float64
}

// spec converts to the adversary package's resolved form.
func (f Fault) spec() adversary.Spec {
	s := adversary.Spec{Kind: f.Kind, Params: adversary.Params(f.Params)}
	for _, m := range f.Compose {
		s.Compose = append(s.Compose, adversary.Layer{Kind: m.Kind, Params: adversary.Params(m.Params)})
	}
	return s
}

// FaultKinds lists the registered adversary strategy names, sorted —
// "silent", "crash", "extreme", "equivocate", "tamper", "noise",
// "delayedequiv", "split", "replay", plus anything registered via
// adversary.Register.
func FaultKinds() []string { return adversary.Adversaries() }

// FaultDefaults returns the named strategy's parameters with their default
// values (for catalogs and CLIs).
func FaultDefaults(kind string) (map[string]float64, error) {
	s, err := adversary.ByName(kind)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return s.Defaults(), nil
}

// FaultPrimary returns the parameter name the strategy's legacy scalar
// "param" form maps to ("" when the strategy has none), and a one-line
// description of the strategy.
func FaultPrimary(kind string) (primary, doc string, err error) {
	s, err := adversary.ByName(kind)
	if err != nil {
		return "", "", fmt.Errorf("repro: %w", err)
	}
	return s.Primary(), s.Doc(), nil
}

// LinkFault is one Byzantine link-failure rule, applied per directed edge
// on every runtime: "drop", "duplicate" and "delay" match the listed
// edges; "partition" matches every edge crossing the listed node set's
// boundary. Params (see LinkFaultDefaults) tune probability, delay amount
// (delivery steps on the simulator, milliseconds on a cluster) and
// partition healing. Rules are seeded-deterministic per edge.
type LinkFault struct {
	Kind   string             `json:"kind"`
	Edges  [][2]int           `json:"edges,omitempty"`
	Nodes  []int              `json:"nodes,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// rule converts to the linkfault package's form.
func (l LinkFault) rule() linkfault.Rule {
	return linkfault.Rule{Kind: l.Kind, Edges: l.Edges, Nodes: l.Nodes, Params: l.Params}
}

// LinkFaultKinds lists the link-fault rule kinds, sorted.
func LinkFaultKinds() []string { return linkfault.Kinds() }

// LinkFaultDefaults returns the rule kind's parameters with their default
// values, plus a one-line description.
func LinkFaultDefaults(kind string) (params map[string]float64, doc string, err error) {
	defs, err := linkfault.Defaults(kind)
	if err != nil {
		return nil, "", fmt.Errorf("repro: %w", err)
	}
	return defs, linkfault.Doc(kind), nil
}

// linkFaultSeedSalt decouples the link-fault streams from the schedule and
// adversary streams derived from the same run seed.
const linkFaultSeedSalt = 0x11f4

// buildLinkFaults compiles the options' link-fault rules for g, seeded
// from the run seed.
func buildLinkFaults(g *Graph, opts Options) (*linkfault.Set, error) {
	if len(opts.LinkFaults) == 0 {
		return nil, nil
	}
	rules := make([]linkfault.Rule, len(opts.LinkFaults))
	for i, l := range opts.LinkFaults {
		rules[i] = l.rule()
	}
	set, err := linkfault.New(g, rules, seedmix.Mix(opts.Seed, linkFaultSeedSalt))
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return set, nil
}

// FZero is the sentinel for Options.F and Scenario.F requesting an explicit
// zero fault bound. A literal 0 means "default" (= 1) everywhere for
// backward compatibility, so f = 0 needs its own spelling.
const FZero = -1

// Options parameterizes a protocol run.
type Options struct {
	// F is the resilience parameter (default 1; FZero = explicit 0).
	F int
	// K is the a-priori input range bound; defaults to max(|input|) so that
	// the honest input spread is covered whatever the signs.
	K float64
	// Eps is the agreement parameter (default 0.1).
	Eps float64
	// Seed drives both the asynchrony schedule and randomized faults.
	Seed int64
	// Engine selects the execution engine: "inline" (default, a
	// single-threaded direct-call event loop), "goroutine" (one goroutine
	// per node) or "parallel" (speculative multi-core delivery). All
	// produce identical schedules and outputs for the same seed; see
	// EngineNames.
	Engine string
	// EngineWorkers sets the worker count for engines that take one
	// ("parallel"); 0 means the engine default, one worker per CPU. Worker
	// counts change wall-clock only, never results. Setting it with a
	// single-threaded engine is an error. When runs fan out across sweep
	// workers (RunSeeds) too, the engine clamps itself to the sweep lane's
	// fair share of the CPUs instead of oversubscribing — see par.NestedWorkers.
	EngineWorkers int
	// Policy names the asynchrony schedule policy deciding which in-flight
	// message is delivered next: "random" (default), "fifo", "lifo" or
	// "bounded"; see Policies. Stateful policies are seeded with Seed.
	Policy string
	// PolicyParams carries the policy's named numeric knobs (e.g.
	// {"bound": 8} for "bounded"). Unknown names are rejected.
	PolicyParams map[string]float64
	// Observer, when non-nil, streams execution events (deliveries, holds,
	// releases, per-round value snapshots) as the run progresses; see
	// Observer. It never perturbs the schedule. When the Options are fanned
	// across parallel runs (RunSeeds), the one Observer is shared by every
	// run and is invoked from concurrent worker goroutines — it must be
	// goroutine-safe there (JSONLObserver is).
	Observer Observer
	// RecordTrace captures the full delivery schedule into Result.Trace.
	RecordTrace bool
	// PathBudget caps per-node path enumeration (default 250000).
	PathBudget int
	// Faults maps node IDs to fault behaviors.
	Faults map[int]Fault
	// LinkFaults lists Byzantine link-failure rules applied per directed
	// edge, in order; see LinkFault. Enforced by every runtime: at the
	// simulator's injection boundary and on cluster nodes' send paths.
	LinkFaults []LinkFault
	// Rounds overrides the log2(K/Eps) round bound for protocols that
	// take an explicit round count (iterative baseline).
	Rounds int
}

func (o *Options) normalize(inputs []float64) {
	switch o.F {
	case 0:
		o.F = 1
	case FZero:
		// Explicitly requested zero fault bound: the full protocol machinery
		// runs (flooding, consistency conditions, verification), with no
		// adversary tolerance. The scale studies use this to measure the
		// delivery core without the f >= 1 thread multiplicity.
		o.F = 0
	}
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.K == 0 {
		// max(|x|), not max(x): with all-negative inputs the latter collapses
		// to the floor of 1, violating the a-priori range bound the round
		// count log2(K/eps) is derived from. For non-negative inputs the two
		// coincide.
		for _, x := range inputs {
			o.K = math.Max(o.K, math.Abs(x))
		}
		if o.K == 0 {
			o.K = 1
		}
	}
}

// Result reports a protocol execution.
type Result struct {
	// Outputs holds each honest node's decision.
	Outputs map[int]float64
	// Honest is the set of non-faulty nodes.
	Honest NodeSet
	// Spread is max-min over honest outputs.
	Spread float64
	// Converged reports Spread < Eps, Decided that all honest nodes output.
	Converged bool
	Decided   bool
	// ValidityOK reports that outputs stayed within the honest input range.
	ValidityOK bool
	// Steps is the number of message deliveries; MessagesSent the number of
	// sends (they differ only when a run is cut short).
	Steps        int
	MessagesSent int
	ByKind       map[string]int
	// Histories holds per-round state values of honest nodes where the
	// protocol records them.
	Histories map[int][]float64
	// Vectors holds per-node decision vectors for protocols whose decision
	// is a vector rather than a scalar (the exact tier's ACS: agreed origin
	// -> agreed value). Empty for scalar protocols.
	Vectors map[int]map[int]float64
	// Trace is the delivery schedule, one message per line, recorded only
	// when Options.RecordTrace is set. Identical seeds yield identical
	// traces, on every engine.
	Trace string
	// LinkStats counts link-fault interventions (zero when the run had no
	// link-fault rules). Reported by the simulator and the cluster
	// runtimes alike.
	LinkStats LinkFaultStats
}

// LinkFaultStats counts a run's link-fault interventions: sends dropped,
// extra copies fabricated, and copies delayed.
type LinkFaultStats struct {
	Dropped, Duplicated, Delayed int
}

func linkStats(set *linkfault.Set) LinkFaultStats {
	d, du, de := set.Counts()
	return LinkFaultStats{Dropped: d, Duplicated: du, Delayed: de}
}

// historyProvider is implemented by machines that record per-round values.
type historyProvider interface{ History() []float64 }

// vectorProvider is implemented by machines whose decision is a vector
// (acs.Machine); nil until the node has decided.
type vectorProvider interface{ Vector() map[int]float64 }

// Handler is one node's protocol endpoint — the machine interface both the
// simulator and the live cluster runtimes execute (an alias of
// sim.Handler, like Observer).
type Handler = sim.Handler

// HandlerFactory builds the protocol machine for one vertex of a run.
type HandlerFactory = func(id int) (Handler, error)

// BuilderFunc prepares one run's shared protocol context (path
// enumerations, round bounds, structural validation) and returns the
// per-vertex machine factory. It receives opts with F, K and Eps already
// normalized. Builders are what the live cluster runtimes consume; see
// RegisterBuilder.
type BuilderFunc func(g *Graph, inputs []float64, opts Options) (HandlerFactory, error)

// buildHandlers instantiates every vertex's machine, wrapping the vertices
// named in opts.Faults with their adversaries; it is shared by the
// simulator path (runProtocol) and the cluster runtimes. An unregistered
// fault kind or unknown param is a hard error on every path — there is no
// silent fall-back to the honest handler. Per-node adversary streams are
// decorrelated with a splitmix-derived seed (adversary.NodeSeed), not
// opts.Seed+i.
func buildHandlers(g *Graph, inputs []float64, opts Options, factory HandlerFactory) ([]sim.Handler, NodeSet, error) {
	if len(inputs) != g.N() {
		return nil, graph.EmptySet, fmt.Errorf("repro: %d inputs for %d nodes", len(inputs), g.N())
	}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		inner, err := factory(i)
		if err != nil {
			return nil, graph.EmptySet, err
		}
		if fl, bad := opts.Faults[i]; bad {
			h, err := adversary.BuildHandler(i, fl.spec(), inner, adversary.NodeSeed(opts.Seed, i))
			if err != nil {
				return nil, graph.EmptySet, fmt.Errorf("repro: fault at node %d: %w", i, err)
			}
			handlers[i] = h
		} else {
			handlers[i] = inner
			honest = honest.Add(i)
		}
	}
	return handlers, honest, nil
}

// finish derives the agreement metrics — Spread, ValidityOK, Converged —
// from the already-populated Outputs/Honest/Decided fields. Shared by the
// simulator and cluster result paths so both runtimes are judged by
// exactly the same criteria.
func (r *Result) finish(inputs []float64, eps float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	r.Honest.ForEach(func(v int) bool {
		lo, hi = math.Min(lo, inputs[v]), math.Max(hi, inputs[v])
		return true
	})
	omin, omax := math.Inf(1), math.Inf(-1)
	for _, x := range r.Outputs {
		omin, omax = math.Min(omin, x), math.Max(omax, x)
	}
	if len(r.Outputs) > 0 {
		r.Spread = omax - omin
		r.ValidityOK = omin >= lo && omax <= hi
	}
	r.Converged = r.Decided && r.Spread < eps
}

func runProtocol(g *Graph, inputs []float64, opts Options, factory HandlerFactory) (*Result, error) {
	handlers, honest, err := buildHandlers(g, inputs, opts, factory)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(opts.Engine, opts.EngineWorkers)
	if err != nil {
		return nil, err
	}
	policy, err := transport.NewPolicy(opts.Policy, opts.PolicyParams, opts.Seed)
	if err != nil {
		return nil, err
	}
	links, err := buildLinkFaults(g, opts)
	if err != nil {
		return nil, err
	}
	runner, err := sim.New(sim.Config{
		Graph:       g,
		Policy:      policy,
		Engine:      engine,
		LinkFaults:  links,
		RecordTrace: opts.RecordTrace,
		Observer:    opts.Observer,
	}, handlers)
	if err != nil {
		return nil, err
	}
	if err := runner.Run(); err != nil {
		return nil, err
	}
	res := &Result{
		Honest:       honest,
		Steps:        runner.Steps(),
		MessagesSent: runner.Stats().Sent,
		ByKind:       runner.Stats().ByKind(),
		Histories:    make(map[int][]float64),
		Vectors:      make(map[int]map[int]float64),
		Trace:        runner.TraceString(),
		LinkStats:    linkStats(links),
	}
	res.Outputs, res.Decided = runner.Outputs(honest)
	honest.ForEach(func(v int) bool {
		if hp, ok := runner.Handler(v).(historyProvider); ok {
			res.Histories[v] = hp.History()
		}
		if vp, ok := runner.Handler(v).(vectorProvider); ok {
			if vec := vp.Vector(); vec != nil {
				res.Vectors[v] = vec
			}
		}
		return true
	})
	res.finish(inputs, opts.Eps)
	return res, nil
}

// buildBW is Algorithm BW's BuilderFunc.
func buildBW(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	proto, err := bw.NewProto(g, opts.F, opts.K, opts.Eps, opts.PathBudget)
	if err != nil {
		return nil, err
	}
	return func(id int) (Handler, error) {
		return bw.NewMachine(proto, id, inputs[id])
	}, nil
}

// RunBW executes the paper's Algorithm BW on g.
func RunBW(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildBW(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// buildAAD is the Abraham–Amit–Dolev baseline's BuilderFunc.
func buildAAD(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	if g.M() != g.N()*(g.N()-1) {
		return nil, errors.New("repro: AAD requires a complete graph")
	}
	rounds := bw.RoundsFor(opts.K, opts.Eps)
	return func(id int) (Handler, error) {
		return aad.NewMachine(g.N(), opts.F, id, rounds, inputs[id])
	}, nil
}

// RunAAD executes the Abraham–Amit–Dolev baseline; g must be a clique with
// n > 3f.
func RunAAD(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildAAD(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// buildCrashApprox is the 2-reach crash-fault algorithm's BuilderFunc.
func buildCrashApprox(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	proto, err := crashapprox.NewProto(g, opts.F, opts.K, opts.Eps, opts.PathBudget)
	if err != nil {
		return nil, err
	}
	return func(id int) (Handler, error) {
		return crashapprox.NewMachine(proto, id, inputs[id])
	}, nil
}

// RunCrashApprox executes the 2-reach crash-fault algorithm (Table 2's
// crash/asynchronous cell).
func RunCrashApprox(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildCrashApprox(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// buildIterative is the local trimmed-mean baseline's BuilderFunc.
func buildIterative(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = bw.RoundsFor(opts.K, opts.Eps)
	}
	return func(id int) (Handler, error) {
		return iterative.NewMachine(g, opts.F, id, rounds, inputs[id])
	}, nil
}

// RunIterative executes the local trimmed-mean baseline for opts.Rounds
// rounds (default: the log2(K/Eps) bound).
func RunIterative(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildIterative(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// buildABA is the exact tier's binary-agreement BuilderFunc: MMR-style ABA
// with the seeded deterministic common coin. Inputs map to proposal bits
// (nonzero -> 1); the decision is 0 or 1.
func buildABA(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	if g.M() != g.N()*(g.N()-1) {
		return nil, errors.New("repro: ABA requires a complete graph")
	}
	if g.N() <= 3*opts.F {
		return nil, fmt.Errorf("repro: ABA requires n > 3f (n=%d, f=%d)", g.N(), opts.F)
	}
	return func(id int) (Handler, error) {
		bit := 0
		if inputs[id] != 0 {
			bit = 1
		}
		return aba.NewMachine(g.N(), opts.F, id, opts.Seed, bit), nil
	}, nil
}

// RunABA executes asynchronous binary agreement; g must be a clique with
// n > 3f. The common coin derives from opts.Seed, so the same seed decides
// the same way on every engine and runtime.
func RunABA(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildABA(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// buildACS is the exact tier's agreement-on-a-common-subset BuilderFunc:
// n reliable broadcasts plus n ABA instances (BKR). The scalar output is
// the mean of the agreed subset's values; the full vector is surfaced as
// Result.Vectors.
func buildACS(g *Graph, inputs []float64, opts Options) (HandlerFactory, error) {
	if g.M() != g.N()*(g.N()-1) {
		return nil, errors.New("repro: ACS requires a complete graph")
	}
	return func(id int) (Handler, error) {
		return acs.New(g.N(), opts.F, id, opts.Seed, inputs[id])
	}, nil
}

// RunACS executes agreement on a common subset; g must be a clique with
// n > 3f. All honest nodes decide the identical subset of at least n−f
// input values (Result.Vectors) and output its mean.
func RunACS(g *Graph, inputs []float64, opts Options) (*Result, error) {
	opts.normalize(inputs)
	factory, err := buildACS(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	return runProtocol(g, inputs, opts, factory)
}

// RunNecessity executes the Theorem 18 construction on a graph violating
// 3-reach; see adversary.RunNecessity.
func RunNecessity(g *Graph, f int, k, eps float64, seed int64) (*NecessityResult, error) {
	return adversary.RunNecessity(g, f, k, eps, seed)
}

// BWRounds exposes the paper's termination bound r > log2(K/eps).
func BWRounds(k, eps float64) int { return bw.RoundsFor(k, eps) }

// EngineNames lists the available execution engines for Options.Engine.
func EngineNames() []string { return sim.EngineNames() }

// EngineInfo describes one execution engine for catalogs: its name, a
// one-line doc, and whether it accepts a worker count (Options.EngineWorkers).
type EngineInfo = sim.EngineInfo

// EngineCatalog returns the registered engines' descriptors, sorted by name.
func EngineCatalog() []EngineInfo { return sim.Engines() }

// RunFunc is the shared signature of the Run* protocol entry points
// (RunBW, RunAAD, RunCrashApprox, RunIterative).
type RunFunc func(g *Graph, inputs []float64, opts Options) (*Result, error)

// RunSeeds executes run across n consecutive seeds starting at opts.Seed,
// fanning the independent executions over a worker pool (workers < 1 means
// one per CPU, 1 runs sequentially). Results come back in seed order and
// are identical to n sequential calls — the runs share no mutable state, so
// parallelism cannot perturb the seeded schedules. Cancelling ctx stops the
// sweep between runs (individual simulator executions are not interrupted
// mid-run) and returns ctx.Err(); a nil ctx means context.Background().
func RunSeeds(ctx context.Context, run RunFunc, g *Graph, inputs []float64, opts Options, n, workers int) ([]*Result, error) {
	return par.Map(ctx, workers, n, func(i int) (*Result, error) {
		o := opts
		o.Seed = opts.Seed + int64(i)
		return run(g, inputs, o)
	})
}
