// Quickstart: check the paper's tight condition (3-reach) on a directed
// network, then describe a complete run — graph, protocol, adversary,
// schedule — as one declarative repro.Scenario, print its canonical JSON
// (the exact document `abacsim -scenario` accepts), and execute it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's Figure 1(a) graph: n = 5 > 3f, κ = 3 > 2f for f = 1.
	g := repro.Fig1a()

	// 1. Feasibility: asynchronous Byzantine approximate consensus is
	//    possible iff 3-reach holds (Theorem 4).
	ok, witness := repro.Check3Reach(g, 1)
	fmt.Printf("graph %s satisfies 3-reach for f=1: %v\n", g, ok)
	if !ok {
		log.Fatalf("no algorithm can exist here (witness: %s)", witness)
	}

	// 2. Declare the run. Node 2 is Byzantine and floods an extreme value;
	//    Filter-and-Average must trim it.
	scenario := repro.Scenario{
		Name:     "quickstart",
		Graph:    "fig1a",
		Protocol: "bw",
		Inputs:   []float64{0.0, 4.0, 1.0, 3.0, 2.0},
		F:        1,
		K:        4,    // inputs lie in [0, K], known a priori (paper Section 4.6)
		Eps:      0.25, // agreement parameter
		Seed:     42,
		Faults:   []repro.FaultSpec{{Node: 2, Kind: "extreme", Params: map[string]float64{"value": 1e9}}},
	}

	// The scenario is fully serializable: this JSON replays the identical
	// execution via `abacsim -scenario quickstart.json`.
	doc, err := scenario.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscenario file:\n%s\n\n", doc)

	// 3. Run it.
	res, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("honest outputs: %v\n", res.Outputs)
	fmt.Printf("spread %.4g < eps %.4g: %v, within honest input range: %v\n",
		res.Spread, scenario.Eps, res.Converged, res.ValidityOK)
	fmt.Printf("rounds: %d, messages: %d (%v)\n",
		repro.BWRounds(scenario.K, scenario.Eps), res.MessagesSent, res.ByKind)
}
