// Necessity demo (Theorem 18): on a graph violating 3-reach, the
// indistinguishability construction of Appendix B forces two nonfaulty
// nodes to output values eps apart — no algorithm can achieve approximate
// consensus there. The demo machine-checks the stitching preconditions and
// runs the two crash executions whose outputs the stitched execution
// inherits. As a contrast, the same inputs on one more node (K4, where
// 3-reach holds) are run as a declarative Scenario and converge.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// K3 with f = 1 is the minimal violation: n = 3f.
	g := repro.Clique(3)
	ok, w := repro.Check3Reach(g, 1)
	fmt.Printf("K3 satisfies 3-reach for f=1: %v\n", ok)
	fmt.Printf("violation witness: %s\n", w)

	res, err := repro.RunNecessity(g, 1, 1.0, 0.25, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Theorem 18 construction:")
	fmt.Printf("  L = reach_v(F∪Fv) = %s (sees only L∪F once Fv is silenced)\n", res.L)
	fmt.Printf("  R = reach_u(F∪Fu) = %s (sees only R∪F once Fu is silenced)\n", res.R)
	fmt.Printf("  stitching preconditions hold: %v\n", res.StructureOK)
	fmt.Printf("  e1 (inputs 0, Fv crashed):  v outputs %g\n", res.VOutput)
	fmt.Printf("  e2 (inputs K, Fu crashed):  u outputs %g\n", res.UOutput)
	fmt.Printf("  stitched e3 therefore has spread %g >= eps %g: violation=%v\n",
		res.Spread, res.Eps, res.Violated())

	// Contrast: one more node makes it feasible — and the feasible side is
	// an ordinary scenario run, crash fault included.
	ok4, _ := repro.Check3Reach(repro.Clique(4), 1)
	fmt.Printf("\nadding one node (K4): 3-reach = %v — consensus is possible again\n", ok4)

	feasible := repro.Scenario{
		Name:     "necessity-contrast",
		Graph:    "clique:4",
		Protocol: "bw",
		Inputs:   []float64{0, 1, 0, 1},
		F:        1, K: 1, Eps: 0.25,
		Seed:   2024,
		Faults: []repro.FaultSpec{{Node: 2, Kind: "crash", Params: map[string]float64{"after": 10}}},
	}
	run, err := feasible.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BW on K4 with one crash: spread %.4g < eps %g: %v (validity %v)\n",
		run.Spread, feasible.Eps, run.Converged, run.ValidityOK)
}
