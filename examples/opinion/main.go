// Opinion dynamics (the paper's motivating application [11]): agents hold
// opinions in [0, 10] and interact over a directed influence network; a
// manipulator equivocates, telling every neighbor something different.
// Algorithm BW still drives honest opinions together, halving disagreement
// every asynchronous round (Lemma 15). This demo watches that contraction
// happen *live*: a streaming Observer receives each agent's per-round value
// the moment the round completes, instead of reading histories after the
// fact.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro"
)

func main() {
	const (
		f   = 1
		k   = 10.0
		eps = 0.05
	)

	opinions := []float64{0.5, 9.5, 5.0, 2.0, 8.0}
	fmt.Printf("initial opinions: %v\n", opinions)
	fmt.Printf("rounds needed (first r > log2(K/eps)): %d\n", repro.BWRounds(k, eps))

	scenario := repro.Scenario{
		Name:     "opinion-dynamics",
		Graph:    "fig1a", // influence network: hub + rim
		Protocol: "bw",
		Inputs:   opinions,
		F:        f, K: k, Eps: eps,
		Seed:   8,
		Faults: []repro.FaultSpec{{Node: 1, Kind: "equivocate", Params: map[string]float64{"step": 1.5}}},
	}

	// Stream per-round opinions as they are recorded: byRound[r] collects
	// each honest agent's value for round r+1, and deliveries are counted to
	// show how much asynchronous traffic each round absorbs.
	var byRound [][]float64
	roundSteps := map[int]int{}
	res, err := scenario.RunObserved(repro.ObserverFunc(func(e repro.Event) {
		if e.Type != repro.EventRound {
			return
		}
		for len(byRound) < e.Round {
			byRound = append(byRound, nil)
		}
		byRound[e.Round-1] = append(byRound[e.Round-1], e.Value)
		roundSteps[e.Round] = e.Step // last delivery that completed this round
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nround   disagreement   bound K/2^r   (by delivery)")
	bound := k
	for r, vals := range byRound {
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			min, max = math.Min(min, v), math.Max(max, v)
		}
		bound /= 2
		fmt.Printf("%5d   %12.5f   %11.5f   %12d\n", r+1, max-min, bound, roundSteps[r+1])
	}

	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("\nfinal honest opinions:")
	for _, id := range ids {
		fmt.Printf("  agent %d: %.5f\n", id, res.Outputs[id])
	}
	fmt.Printf("spread %.5g < eps %g: %v\n", res.Spread, eps, res.Converged)
}
