// Opinion dynamics (the paper's motivating application [11]): agents hold
// opinions in [0, 10] and interact over a directed influence network; a
// manipulator equivocates, telling every neighbor something different.
// Algorithm BW still drives honest opinions together, halving disagreement
// every asynchronous round (Lemma 15) — this demo prints the series.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro"
)

func main() {
	const (
		f   = 1
		k   = 10.0
		eps = 0.05
	)
	g := repro.Fig1a() // influence network: hub + rim

	opinions := []float64{0.5, 9.5, 5.0, 2.0, 8.0}
	fmt.Printf("initial opinions: %v\n", opinions)
	fmt.Printf("rounds needed (first r > log2(K/eps)): %d\n", repro.BWRounds(k, eps))

	res, err := repro.RunBW(g, opinions, repro.Options{
		F: f, K: k, Eps: eps, Seed: 8,
		Faults: map[int]repro.Fault{
			1: {Type: repro.FaultEquivocate, Param: 1.5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per-round disagreement across honest agents.
	rounds := 0
	for _, h := range res.Histories {
		if len(h) > rounds {
			rounds = len(h)
		}
	}
	fmt.Println("\nround   disagreement   bound K/2^r")
	bound := k
	for r := 0; r < rounds; r++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, h := range res.Histories {
			if r < len(h) {
				min, max = math.Min(min, h[r]), math.Max(max, h[r])
			}
		}
		bound /= 2
		fmt.Printf("%5d   %12.5f   %11.5f\n", r+1, max-min, bound)
	}

	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("\nfinal honest opinions:")
	for _, id := range ids {
		fmt.Printf("  agent %d: %.5f\n", id, res.Outputs[id])
	}
	fmt.Printf("spread %.5g < eps %g: %v\n", res.Spread, eps, res.Converged)
}
