// Load balancing (the paper's motivating application [4]): worker nodes
// hold different queue lengths and agree on the common per-node load target
// via approximate consensus. Workers may crash mid-protocol; the directed
// 2-reach algorithm (Table 2's crash/asynchronous cell) handles that
// without any Byzantine machinery. The run is declared as a Scenario with
// an explicit schedule policy: a bounded-delay network (partial synchrony),
// the regime real dispatch fabrics actually run in — crash algorithms must
// of course keep working there, since it is a subset of the asynchronous
// schedules.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		f   = 1
		eps = 0.5 // agree on the target within half a task
	)

	queueLens := []float64{12, 3, 27, 8, 15}
	fmt.Printf("initial queue lengths: %v\n", queueLens)

	scenario := repro.Scenario{
		Name: "load-balance",
		// Work dispatch topology: each worker can push work to the next two.
		Graph:    "circulant:5:1,2",
		Protocol: "crashapprox",
		Inputs:   queueLens,
		F:        f, K: 30, Eps: eps,
		Seed: 17,
		// Deliveries are random but no message is overtaken by more than 8
		// younger ones — a partially synchronous dispatch network.
		Policy: &repro.PolicySpec{Name: "bounded", Params: map[string]float64{"bound": 8}},
		Faults: []repro.FaultSpec{{Node: 2, Kind: "crash", Params: map[string]float64{"after": 15}}}, // worker 2 dies mid-run
	}

	res, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreed load targets: %v\n", res.Outputs)
	fmt.Printf("spread: %.4g (eps %g), converged: %v, validity: %v\n",
		res.Spread, eps, res.Converged, res.ValidityOK)
	fmt.Printf("surviving workers rebalance toward the common target; messages used: %d\n",
		res.MessagesSent)
}
