// Load balancing (the paper's motivating application [4]): worker nodes
// hold different queue lengths and agree on the common per-node load target
// via approximate consensus. Workers may crash mid-protocol; the directed
// 2-reach algorithm (Table 2's crash/asynchronous cell) handles that
// without any Byzantine machinery.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		f   = 1
		eps = 0.5 // agree on the target within half a task
	)
	// Work dispatch topology: each worker can push work to the next two.
	g := repro.Circulant(5, 1, 2)

	queueLens := []float64{12, 3, 27, 8, 15}
	fmt.Printf("initial queue lengths: %v\n", queueLens)

	res, err := repro.RunCrashApprox(g, queueLens, repro.Options{
		F: f, K: 30, Eps: eps, Seed: 17,
		Faults: map[int]repro.Fault{
			2: {Type: repro.FaultCrash, Param: 15}, // worker 2 dies mid-run
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreed load targets: %v\n", res.Outputs)
	fmt.Printf("spread: %.4g (eps %g), converged: %v, validity: %v\n",
		res.Spread, eps, res.Converged, res.ValidityOK)
	fmt.Printf("surviving workers rebalance toward the common target; messages used: %d\n",
		res.MessagesSent)
}
