// Sensor fusion (the paper's motivating application [2]): a field of
// sensors measures the same physical quantity with noise; radio ranges
// differ, so the communication topology is directed. One sensor is
// compromised and reports garbage. The sensors agree on a fused reading
// within eps despite asynchrony and the Byzantine sensor — and because the
// run is a declarative Scenario, RunBatch replays it across many
// asynchrony schedules to show the fused reading is schedule-independent
// within eps.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Directed topology: a circulant network — sensor i transmits to
	// i+1, i+2, i+3 (mod n); different transmit powers would break the
	// symmetric-link assumption, which is exactly the paper's motivation
	// for directed graphs.
	const (
		n         = 7
		f         = 1
		truth     = 21.5 // ground-truth temperature
		noiseAmp  = 0.8
		eps       = 0.1
		byzSensor = 3
	)
	g := repro.Circulant(n, 1, 2, 3)

	if ok, _ := repro.Check3Reach(g, f); !ok {
		log.Fatal("topology cannot tolerate a Byzantine sensor")
	}

	rng := rand.New(rand.NewSource(7))
	readings := make([]float64, n)
	for i := range readings {
		readings[i] = truth + noiseAmp*(2*rng.Float64()-1)
	}
	fmt.Printf("raw readings: %.3v\n", readings)

	scenario := repro.Scenario{
		Name:     "sensor-fusion",
		Graph:    "circulant:7:1,2,3",
		Protocol: "bw",
		Inputs:   readings,
		F:        f, K: 25, Eps: eps,
		Seed: 99, Seeds: 4, // four consecutive asynchrony schedules
		Faults: []repro.FaultSpec{{Node: byzSensor, Kind: "noise", Params: map[string]float64{"amp": 500}}},
	}

	results, err := scenario.RunBatch(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}

	res := results[0]
	fmt.Printf("fused readings (seed %d): %v\n", scenario.Seed, res.Outputs)
	fmt.Printf("agreement spread: %.4g (eps %g), validity: %v\n", res.Spread, eps, res.ValidityOK)
	var fused float64
	for _, x := range res.Outputs {
		fused = x
		break
	}
	fmt.Printf("fused estimate %.3f vs ground truth %.3f (honest noise ±%.1f)\n",
		fused, truth, noiseAmp)

	fmt.Println("\nschedule independence (same sensors, different asynchrony):")
	for i, r := range results {
		fmt.Printf("  seed %d: spread %.4g, converged %v\n",
			scenario.Seed+int64(i), r.Spread, r.Converged)
	}
}
