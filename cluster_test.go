package repro_test

import (
	"context"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// conformanceScenarios maps every registered protocol to a scenario whose
// simulator run is known to decide, converge and respect validity. The
// cross-runtime conformance test requires an entry for each registered
// protocol: adding a protocol without one fails the test, which is the
// point — a protocol is not done until it runs on the live runtime.
func conformanceScenarios() map[string]repro.Scenario {
	return map[string]repro.Scenario{
		"bw": {
			Name: "conformance-bw", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		"aad": {
			Name: "conformance-aad", Graph: "clique:4", Protocol: "aad",
			Inputs: []float64{0, 3, 1, 2}, F: 1, K: 3, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 3, Kind: "silent"}},
		},
		"crashapprox": {
			Name: "conformance-crash", Graph: "fig1a", Protocol: "crashapprox",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		"iterative": {
			Name: "conformance-iter", Graph: "clique:5", Protocol: "iterative",
			Inputs: []float64{0, 3, 1, 2, 2}, F: 1, K: 3, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 4, Kind: "silent"}},
		},
		// Exact tier. ABA: the honest nodes unanimously propose 1, so the
		// binding-value rule pins the decision to 1 whatever the silent
		// node withholds. ACS: the faulty input (2) lies inside the honest
		// input range [0,3], so the subset mean respects validity whether
		// or not node 3's broadcast makes the subset.
		"aba": {
			Name: "conformance-aba", Graph: "clique:4", Protocol: "aba",
			Inputs: []float64{1, 1, 1, 0}, F: 1, K: 1, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 3, Kind: "silent"}},
		},
		"acs": {
			Name: "conformance-acs", Graph: "clique:4", Protocol: "acs",
			Inputs: []float64{0, 3, 1, 2}, F: 1, K: 3, Eps: 0.25, Seed: 7,
			Faults: []repro.FaultSpec{{Node: 3, Kind: "silent"}},
		},
	}
}

// assertGuarantees applies the protocol acceptance criteria shared by both
// runtimes: termination, validity and ε-agreement.
func assertGuarantees(t *testing.T, label string, res *repro.Result, eps float64) {
	t.Helper()
	if !res.Decided {
		t.Fatalf("%s: honest nodes did not all decide", label)
	}
	if !res.ValidityOK {
		t.Fatalf("%s: outputs %v violate validity", label, res.Outputs)
	}
	if !res.Converged {
		t.Fatalf("%s: spread %g >= eps %g", label, res.Spread, eps)
	}
	if len(res.Outputs) != res.Honest.Count() {
		t.Fatalf("%s: %d outputs for %d honest nodes", label, len(res.Outputs), res.Honest.Count())
	}
}

// TestClusterConformance is the headline invariant of the live runtime:
// for every registered protocol, a Scenario run on the loopback cluster
// passes the same validity and ε-agreement assertions as its simulator
// run. The schedules differ — the simulator replays a seeded adversarial
// order, the cluster delivers whatever the transport produces — but both
// are legal asynchronous executions, so the guarantees must hold on both.
func TestClusterConformance(t *testing.T) {
	scenarios := conformanceScenarios()
	for _, proto := range repro.Protocols() {
		s, ok := scenarios[proto]
		if !ok {
			t.Fatalf("registered protocol %q has no conformance scenario; add one to conformanceScenarios", proto)
		}
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			simRes, err := s.RunOn(context.Background(), repro.RuntimeSim)
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			assertGuarantees(t, "sim", simRes, s.Eps)

			clusterRes, err := s.RunOn(context.Background(), repro.RuntimeLoopback)
			if err != nil {
				t.Fatalf("loopback run: %v", err)
			}
			assertGuarantees(t, "loopback", clusterRes, s.Eps)

			if clusterRes.Steps == 0 || clusterRes.MessagesSent == 0 {
				t.Fatalf("loopback run reported no traffic: %+v", clusterRes)
			}
		})
	}
}

// TestClusterTCPConformance runs one full scenario (BW on Figure 1(a) with
// a silent Byzantine node) over real TCP sockets.
func TestClusterTCPConformance(t *testing.T) {
	s := conformanceScenarios()["bw"]
	res, err := repro.RunCluster(context.Background(), s, repro.RuntimeTCP)
	if err != nil {
		t.Fatal(err)
	}
	assertGuarantees(t, "tcp", res, s.Eps)
}

// TestClusterAdversaryConformance mirrors the protocol conformance suite
// for the adversary layer: every registered adversary strategy, with its
// default params, must pass the same termination/validity/ε-agreement
// assertions on the loopback cluster as on the simulator. Adding a
// strategy automatically adds its cross-runtime check.
func TestClusterAdversaryConformance(t *testing.T) {
	for _, kind := range repro.FaultKinds() {
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			s := repro.Scenario{
				Name: "adv-conformance-" + kind, Graph: "fig1a", Protocol: "bw",
				Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: 13,
				Faults: []repro.FaultSpec{{Node: 1, Kind: kind}},
			}
			simRes, err := s.RunOn(context.Background(), repro.RuntimeSim)
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			assertGuarantees(t, "sim/"+kind, simRes, s.Eps)

			clusterRes, err := s.RunOn(context.Background(), repro.RuntimeLoopback)
			if err != nil {
				t.Fatalf("loopback run: %v", err)
			}
			assertGuarantees(t, "loopback/"+kind, clusterRes, s.Eps)
		})
	}
}

// attackScenario loads the acceptance-criterion artifact shipped as
// examples/attack.json (the file the README walks through): one attack
// scenario combining a multi-param node fault (composed with a second
// mutator layer) and link faults, which must run unmodified on all three
// runtimes. Delay amounts are delivery steps on the simulator and
// milliseconds on a cluster; both are finite delays, so the BW guarantees
// hold everywhere. Loading the real file keeps the tested artifact and
// the documented one from drifting apart.
func attackScenario(t *testing.T) *repro.Scenario {
	t.Helper()
	data, err := os.ReadFile("examples/attack.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.ParseScenario(data)
	if err != nil {
		t.Fatalf("examples/attack.json: %v", err)
	}
	if len(s.Faults) == 0 || len(s.Faults[0].Compose) == 0 || len(s.Faults[0].Params) < 2 || len(s.LinkFaults) == 0 {
		t.Fatalf("examples/attack.json lost its multi-param composed fault or link faults: %+v", s)
	}
	return s
}

// TestAttackScenarioJSONAcrossRuntimes is the PR's acceptance criterion:
// the identical attack-scenario JSON — a multi-param composed node fault
// plus link faults — executes on "sim", "loopback" and "tcp" via
// Scenario.RunOn with conformant outcomes, and the link-fault rules
// demonstrably fire on every runtime.
func TestAttackScenarioJSONAcrossRuntimes(t *testing.T) {
	s := attackScenario(t)
	for _, runtime := range []string{repro.RuntimeSim, repro.RuntimeLoopback, repro.RuntimeTCP} {
		t.Run(runtime, func(t *testing.T) {
			res, err := s.RunOn(context.Background(), runtime)
			if err != nil {
				t.Fatalf("%s run: %v", runtime, err)
			}
			assertGuarantees(t, runtime, res, s.Eps)
			if res.LinkStats.Duplicated == 0 {
				t.Errorf("%s: link-fault duplication never fired: %+v", runtime, res.LinkStats)
			}
		})
	}
}

// TestAttackScenarioEngineByteIdentical pins determinism under the
// refactored fault layer: the attack scenario's seeded simulator runs
// produce byte-identical delivery traces on both engines.
func TestAttackScenarioEngineByteIdentical(t *testing.T) {
	s := attackScenario(t)
	s.RecordTrace = true
	traces := map[string]string{}
	for _, engine := range repro.EngineNames() {
		run := *s
		run.Engine = engine
		res, err := run.Run()
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if res.Trace == "" {
			t.Fatalf("engine %s: no trace recorded", engine)
		}
		traces[engine] = res.Trace
		rerun, err := run.Run()
		if err != nil {
			t.Fatalf("engine %s rerun: %v", engine, err)
		}
		if rerun.Trace != res.Trace {
			t.Fatalf("engine %s: repeated runs drifted under link faults", engine)
		}
	}
	base := traces[repro.EngineNames()[0]]
	for engine, trace := range traces {
		if trace != base {
			t.Fatalf("engine %s trace differs under the refactored fault layer", engine)
		}
	}
}

// TestLinkFaultDropBreaksEdgeSim sanity-checks enforcement at the
// simulator's transport boundary: a drop rule with prob 1 on an edge
// removes every delivery on it from the trace.
func TestLinkFaultDropBreaksEdgeSim(t *testing.T) {
	s := repro.Scenario{
		Graph: "clique:4", Protocol: "bw",
		Inputs: []float64{0, 1, 2, 3}, F: 1, K: 3, Eps: 0.25, Seed: 5,
		LinkFaults:  []repro.LinkFault{{Kind: "drop", Edges: [][2]int{{0, 1}}}},
		RecordTrace: true,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkStats.Dropped == 0 {
		t.Fatal("drop rule never fired")
	}
	for _, line := range strings.Split(res.Trace, "\n") {
		if strings.Contains(line, " 0->1 ") {
			t.Fatalf("dropped edge still delivered: %q", line)
		}
	}
	// Clique:4 minus one directed edge still satisfies 3-reach for f=1
	// with no faulty node, so the run must still converge.
	if !res.Converged || !res.ValidityOK {
		t.Errorf("run under dropped edge: %+v", res)
	}
}

func TestRunOnRejectsSimOnlyKnobs(t *testing.T) {
	base := conformanceScenarios()["iterative"]
	cases := []struct {
		mutate func(*repro.Scenario)
		want   string
	}{
		{func(s *repro.Scenario) { s.Engine = "goroutine" }, "engine"},
		{func(s *repro.Scenario) { s.Policy = &repro.PolicySpec{Name: "lifo"} }, "policy"},
		{func(s *repro.Scenario) { s.RecordTrace = true }, "recordTrace"},
		{func(s *repro.Scenario) { s.Seeds = 4 }, "seed batches"},
	}
	for _, tc := range cases {
		s := base
		tc.mutate(&s)
		if _, err := s.RunOn(context.Background(), repro.RuntimeLoopback); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("want error containing %q, got %v", tc.want, err)
		}
	}
	if _, err := base.RunOn(context.Background(), "warp"); err == nil || !strings.Contains(err.Error(), "unknown runtime") {
		t.Errorf("unknown runtime: got %v", err)
	}
}

func TestRunOnSimDefault(t *testing.T) {
	s := conformanceScenarios()["iterative"]
	viaEmpty, err := s.RunOn(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if viaEmpty.Spread != viaRun.Spread || viaEmpty.Steps != viaRun.Steps {
		t.Fatalf("RunOn(\"\") diverged from Run(): %+v vs %+v", viaEmpty, viaRun)
	}
}

func TestRuntimeNames(t *testing.T) {
	names := repro.RuntimeNames()
	for _, want := range []string{"loopback", "sim", "tcp"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("RuntimeNames() = %v, missing %q", names, want)
		}
	}
}

// TestProtocolBuilderErrors pins the error surface of the builder
// registry: unknown protocols and protocols registered without a builder
// both name the problem.
func TestProtocolBuilderErrors(t *testing.T) {
	if _, err := repro.ProtocolBuilder("nope"); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unknown protocol: got %v", err)
	}
	repro.Register("zz-conformance-sim-only", repro.RunIterative)
	if _, err := repro.ProtocolBuilder("zz-conformance-sim-only"); err == nil ||
		!strings.Contains(err.Error(), "no live-runtime builder") {
		t.Fatalf("builderless protocol: got %v", err)
	}
	s := repro.Scenario{Graph: "clique:3", Protocol: "zz-conformance-sim-only", F: 0}
	if _, err := s.RunOn(context.Background(), repro.RuntimeLoopback); err == nil ||
		!strings.Contains(err.Error(), "no live-runtime builder") {
		t.Fatalf("RunOn without builder: got %v", err)
	}
}

// TestJoinClusterMultiNode exercises the public daemon path (the library
// form of abacnode): four goroutines, one per vertex, each joining the
// same AAD scenario over TCP with explicit peer addressing. AAD cannot
// progress without collecting n−f values per round, so deciding proves
// genuine protocol traffic crossed the sockets.
func TestJoinClusterMultiNode(t *testing.T) {
	const n = 4
	inputs := []float64{0, 3, 1, 2}
	s := repro.Scenario{
		Graph: "clique:4", Protocol: "aad",
		Inputs: inputs, F: 1, K: 3, Eps: 0.25,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	runCtx, stopNodes := context.WithCancel(ctx)
	defer stopNodes()

	// Listeners are bound up front (as an operator assigns ports in a
	// config), so every peer address is known before any node starts.
	listeners := make([]net.Listener, n)
	addrs := make(map[int]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	decided := make(chan struct{}, n)
	reports := make([]*repro.NodeReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			peers := make(map[int]string, n-1)
			for j, a := range addrs {
				if j != i {
					peers[j] = a
				}
			}
			reports[i], errs[i] = repro.JoinCluster(runCtx, repro.JoinSpec{
				Scenario: s, ID: i,
				Listener: listeners[i],
				Peers:    peers,
				OnDecide: func(float64) { decided <- struct{}{} },
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case <-decided:
		case <-ctx.Done():
			t.Fatal("vertices never decided")
		}
	}
	stopNodes()
	wg.Wait()

	lo, hi := inputs[0], inputs[0]
	for _, x := range inputs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	omin, omax := reports[0].Output, reports[0].Output
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		r := reports[i]
		if !r.Decided {
			t.Fatalf("join %d did not decide: %+v", i, r)
		}
		if r.Output < lo || r.Output > hi {
			t.Fatalf("join %d output %g violates validity [%g, %g]", i, r.Output, lo, hi)
		}
		if r.Delivered == 0 || r.Sent == 0 {
			t.Fatalf("join %d reports no traffic: %+v", i, r)
		}
		if r.Output < omin {
			omin = r.Output
		}
		if r.Output > omax {
			omax = r.Output
		}
	}
	if omax-omin >= s.Eps {
		t.Fatalf("spread %g >= eps %g across joined nodes", omax-omin, s.Eps)
	}
}

// TestJoinClusterValidation pins the eager error paths of JoinCluster.
func TestJoinClusterValidation(t *testing.T) {
	s := repro.Scenario{Graph: "clique:2", Protocol: "iterative", F: 0}
	cases := []struct {
		spec repro.JoinSpec
		want string
	}{
		{repro.JoinSpec{Scenario: s, ID: 9}, "outside graph order"},
		{repro.JoinSpec{Scenario: s, ID: 0}, "no peer address"},
		{repro.JoinSpec{Scenario: repro.Scenario{Graph: "clique:2"}, ID: 0}, "missing protocol"},
	}
	for _, tc := range cases {
		if _, err := repro.JoinCluster(context.Background(), tc.spec); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("want error containing %q, got %v", tc.want, err)
		}
	}
}
