package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/transport"
)

// The protocol registry maps serialized protocol names to their entry
// points, so scenario files, CLIs and sweeps can select protocols
// declaratively — and external packages can plug in new ones with Register
// without touching any call site. A protocol has up to two faces: a
// RunFunc (a complete simulator execution) and a BuilderFunc (a per-vertex
// machine factory, which is what the live cluster runtimes consume). The
// built-ins register both.

type protocolEntry struct {
	run   RunFunc
	build BuilderFunc
	info  *ProtocolInfo
}

// Protocol tiers and decision shapes for ProtocolInfo.
const (
	TierApproximate = "approximate" // ε-agreement on a real value
	TierExact       = "exact"       // exact agreement (binary or subset)
	ShapeScalar     = "scalar"      // decision is one float (Result.Outputs)
	ShapeVector     = "vector"      // decision is a vector (Result.Vectors)
)

// ProtocolInfo is a registered protocol's catalog metadata: its consensus
// tier (approximate vs exact), decision shape (scalar vs vector) and a
// one-line doc. Catalog consumers (abacsim -list) render from this rather
// than hardcoding strings per protocol.
type ProtocolInfo struct {
	Name  string
	Tier  string
	Shape string
	Doc   string
}

var (
	protocolMu sync.RWMutex
	protocols  = map[string]*protocolEntry{}
)

// Register adds a protocol under a unique, non-empty name. Re-registration
// panics: two packages claiming one name is a programming error, not a
// runtime condition. The built-in protocols "bw", "aad", "crashapprox" and
// "iterative" are pre-registered. A protocol registered this way runs on
// the simulator only; add RegisterBuilder to run it on cluster runtimes.
func Register(name string, run RunFunc) {
	protocolMu.Lock()
	defer protocolMu.Unlock()
	if name == "" || run == nil {
		panic("repro: Register with empty name or nil RunFunc")
	}
	if _, dup := protocols[name]; dup {
		panic(fmt.Sprintf("repro: protocol %q registered twice", name))
	}
	protocols[name] = &protocolEntry{run: run}
}

// RegisterBuilder attaches a live-runtime machine factory to an already
// registered protocol, making it runnable on the cluster runtimes
// (Scenario.RunOn, JoinCluster, abacnode). Unknown names and double
// registration panic, like Register.
func RegisterBuilder(name string, build BuilderFunc) {
	protocolMu.Lock()
	defer protocolMu.Unlock()
	e, ok := protocols[name]
	if !ok {
		panic(fmt.Sprintf("repro: RegisterBuilder for unregistered protocol %q", name))
	}
	if build == nil {
		panic("repro: RegisterBuilder with nil BuilderFunc")
	}
	if e.build != nil {
		panic(fmt.Sprintf("repro: builder for protocol %q registered twice", name))
	}
	e.build = build
}

// RegisterInfo attaches catalog metadata to an already registered
// protocol. Unknown names and double registration panic, like
// RegisterBuilder. Metadata is optional: protocols without it are listed
// with the defaults (approximate tier, scalar shape, no doc).
func RegisterInfo(name string, info ProtocolInfo) {
	protocolMu.Lock()
	defer protocolMu.Unlock()
	e, ok := protocols[name]
	if !ok {
		panic(fmt.Sprintf("repro: RegisterInfo for unregistered protocol %q", name))
	}
	if e.info != nil {
		panic(fmt.Sprintf("repro: info for protocol %q registered twice", name))
	}
	if info.Tier != TierApproximate && info.Tier != TierExact {
		panic(fmt.Sprintf("repro: RegisterInfo(%q) with unknown tier %q", name, info.Tier))
	}
	if info.Shape != ShapeScalar && info.Shape != ShapeVector {
		panic(fmt.Sprintf("repro: RegisterInfo(%q) with unknown shape %q", name, info.Shape))
	}
	info.Name = name
	e.info = &info
}

// ProtocolCatalog returns every registered protocol's metadata, sorted by
// name. Protocols registered without RegisterInfo appear with the default
// tier/shape (approximate, scalar), so third-party registrations list
// cleanly without extra calls.
func ProtocolCatalog() []ProtocolInfo {
	protocolMu.RLock()
	defer protocolMu.RUnlock()
	infos := make([]ProtocolInfo, 0, len(protocols))
	for name, e := range protocols {
		if e.info != nil {
			infos = append(infos, *e.info)
		} else {
			infos = append(infos, ProtocolInfo{Name: name, Tier: TierApproximate, Shape: ShapeScalar})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	protocolMu.RLock()
	defer protocolMu.RUnlock()
	names := make([]string, 0, len(protocols))
	for name := range protocols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProtocolByName resolves a registered protocol's simulator entry point.
func ProtocolByName(name string) (RunFunc, error) {
	protocolMu.RLock()
	e := protocols[name]
	protocolMu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("repro: unknown protocol %q (valid values are: %v)", name, Protocols())
	}
	return e.run, nil
}

// ProtocolBuilder resolves a registered protocol's live-runtime machine
// factory; protocols registered without one (Register only) report a
// dedicated error.
func ProtocolBuilder(name string) (BuilderFunc, error) {
	protocolMu.RLock()
	e := protocols[name]
	protocolMu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("repro: unknown protocol %q (valid values are: %v)", name, Protocols())
	}
	if e.build == nil {
		return nil, fmt.Errorf("repro: protocol %q has no live-runtime builder (RegisterBuilder); it runs on the simulator only", name)
	}
	return e.build, nil
}

func init() {
	Register("bw", RunBW)
	Register("aad", RunAAD)
	Register("crashapprox", RunCrashApprox)
	Register("iterative", RunIterative)
	Register("aba", RunABA)
	Register("acs", RunACS)
	RegisterBuilder("bw", buildBW)
	RegisterBuilder("aad", buildAAD)
	RegisterBuilder("crashapprox", buildCrashApprox)
	RegisterBuilder("iterative", buildIterative)
	RegisterBuilder("aba", buildABA)
	RegisterBuilder("acs", buildACS)
	RegisterInfo("bw", ProtocolInfo{Tier: TierApproximate, Shape: ShapeScalar,
		Doc: "the paper's Algorithm BW: Byzantine approximate consensus on directed graphs"})
	RegisterInfo("aad", ProtocolInfo{Tier: TierApproximate, Shape: ShapeScalar,
		Doc: "Abraham-Amit-Dolev clique baseline on reliable broadcast"})
	RegisterInfo("crashapprox", ProtocolInfo{Tier: TierApproximate, Shape: ShapeScalar,
		Doc: "crash-fault 2-reach approximate consensus (Theorem 2)"})
	RegisterInfo("iterative", ProtocolInfo{Tier: TierApproximate, Shape: ShapeScalar,
		Doc: "local iterative trimmed-mean ablation"})
	RegisterInfo("aba", ProtocolInfo{Tier: TierExact, Shape: ShapeScalar,
		Doc: "MMR asynchronous binary agreement with a seeded deterministic coin"})
	RegisterInfo("acs", ProtocolInfo{Tier: TierExact, Shape: ShapeVector,
		Doc: "BKR agreement on a common subset: n reliable broadcasts + n ABA instances"})
}

// Policies lists the registered asynchrony schedule policies for
// Options.Policy / PolicySpec.Name ("random", "fifo", "lifo", "bounded",
// plus anything registered via transport.RegisterPolicy).
func Policies() []string { return transport.PolicyNames() }

// Observer receives streaming events from a running execution; see
// Options.Observer and Scenario.RunObserved. Implementations are called
// synchronously from the delivery loop and must not block.
type Observer = sim.Observer

// Event is one streamed observation: a delivery, a hold, a release, or a
// per-round value snapshot.
type Event = sim.Event

// EventType discriminates streamed events.
type EventType = sim.EventType

// Event types.
const (
	EventDeliver = sim.EventDeliver
	EventHold    = sim.EventHold
	EventRelease = sim.EventRelease
	EventRound   = sim.EventRound
)

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = sim.ObserverFunc

// MultiObserver fans events out to several observers.
type MultiObserver = sim.MultiObserver

// JSONLObserver returns an Observer that streams one compact JSON object
// per event to w (JSON Lines). Records carry a "type" discriminator:
//
//	{"type":"deliver","step":12,"from":0,"to":3,"kind":"VAL","seq":41}
//	{"type":"hold","step":0,"from":1,"to":2,"kind":"VAL","seq":3}
//	{"type":"release","step":40,"count":3}
//	{"type":"round","step":57,"node":2,"round":3,"value":1.875}
//
// Write errors are sticky and reported by the returned error function;
// events after an error are dropped. The observer is goroutine-safe, so one
// instance may be shared across the parallel runs of RunSeeds/RunBatch
// (lines from concurrent runs interleave whole, never mid-record).
func JSONLObserver(w io.Writer) (Observer, func() error) {
	enc := json.NewEncoder(w)
	var mu sync.Mutex
	var sticky error
	obs := ObserverFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if sticky != nil {
			return
		}
		var rec any
		switch e.Type {
		case EventDeliver, EventHold:
			rec = struct {
				Type string `json:"type"`
				Step int    `json:"step"`
				From int    `json:"from"`
				To   int    `json:"to"`
				Kind string `json:"kind"`
				Seq  uint64 `json:"seq"`
			}{e.Type.String(), e.Step, e.Message.From, e.Message.To, e.Message.Payload.Kind(), e.Message.Seq}
		case EventRelease:
			rec = struct {
				Type  string `json:"type"`
				Step  int    `json:"step"`
				Count int    `json:"count"`
			}{e.Type.String(), e.Step, e.Count}
		case EventRound:
			rec = struct {
				Type  string  `json:"type"`
				Step  int     `json:"step"`
				Node  int     `json:"node"`
				Round int     `json:"round"`
				Value float64 `json:"value"`
			}{e.Type.String(), e.Step, e.Node, e.Round, e.Value}
		default:
			return
		}
		sticky = enc.Encode(rec)
	})
	return obs, func() error {
		mu.Lock()
		defer mu.Unlock()
		return sticky
	}
}
