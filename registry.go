package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/transport"
)

// The protocol registry maps serialized protocol names to their Run*
// entry points, so scenario files, CLIs and sweeps can select protocols
// declaratively — and external packages can plug in new ones with Register
// without touching any call site.

var (
	protocolMu sync.RWMutex
	protocols  = map[string]RunFunc{}
)

// Register adds a protocol under a unique, non-empty name. Re-registration
// panics: two packages claiming one name is a programming error, not a
// runtime condition. The built-in protocols "bw", "aad", "crashapprox" and
// "iterative" are pre-registered.
func Register(name string, run RunFunc) {
	protocolMu.Lock()
	defer protocolMu.Unlock()
	if name == "" || run == nil {
		panic("repro: Register with empty name or nil RunFunc")
	}
	if _, dup := protocols[name]; dup {
		panic(fmt.Sprintf("repro: protocol %q registered twice", name))
	}
	protocols[name] = run
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	protocolMu.RLock()
	defer protocolMu.RUnlock()
	names := make([]string, 0, len(protocols))
	for name := range protocols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProtocolByName resolves a registered protocol.
func ProtocolByName(name string) (RunFunc, error) {
	protocolMu.RLock()
	run := protocols[name]
	protocolMu.RUnlock()
	if run == nil {
		return nil, fmt.Errorf("repro: unknown protocol %q (valid values are: %v)", name, Protocols())
	}
	return run, nil
}

func init() {
	Register("bw", RunBW)
	Register("aad", RunAAD)
	Register("crashapprox", RunCrashApprox)
	Register("iterative", RunIterative)
}

// Policies lists the registered asynchrony schedule policies for
// Options.Policy / PolicySpec.Name ("random", "fifo", "lifo", "bounded",
// plus anything registered via transport.RegisterPolicy).
func Policies() []string { return transport.PolicyNames() }

// Observer receives streaming events from a running execution; see
// Options.Observer and Scenario.RunObserved. Implementations are called
// synchronously from the delivery loop and must not block.
type Observer = sim.Observer

// Event is one streamed observation: a delivery, a hold, a release, or a
// per-round value snapshot.
type Event = sim.Event

// EventType discriminates streamed events.
type EventType = sim.EventType

// Event types.
const (
	EventDeliver = sim.EventDeliver
	EventHold    = sim.EventHold
	EventRelease = sim.EventRelease
	EventRound   = sim.EventRound
)

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = sim.ObserverFunc

// MultiObserver fans events out to several observers.
type MultiObserver = sim.MultiObserver

// JSONLObserver returns an Observer that streams one compact JSON object
// per event to w (JSON Lines). Records carry a "type" discriminator:
//
//	{"type":"deliver","step":12,"from":0,"to":3,"kind":"VAL","seq":41}
//	{"type":"hold","step":0,"from":1,"to":2,"kind":"VAL","seq":3}
//	{"type":"release","step":40,"count":3}
//	{"type":"round","step":57,"node":2,"round":3,"value":1.875}
//
// Write errors are sticky and reported by the returned error function;
// events after an error are dropped. The observer is goroutine-safe, so one
// instance may be shared across the parallel runs of RunSeeds/RunBatch
// (lines from concurrent runs interleave whole, never mid-record).
func JSONLObserver(w io.Writer) (Observer, func() error) {
	enc := json.NewEncoder(w)
	var mu sync.Mutex
	var sticky error
	obs := ObserverFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if sticky != nil {
			return
		}
		var rec any
		switch e.Type {
		case EventDeliver, EventHold:
			rec = struct {
				Type string `json:"type"`
				Step int    `json:"step"`
				From int    `json:"from"`
				To   int    `json:"to"`
				Kind string `json:"kind"`
				Seq  uint64 `json:"seq"`
			}{e.Type.String(), e.Step, e.Message.From, e.Message.To, e.Message.Payload.Kind(), e.Message.Seq}
		case EventRelease:
			rec = struct {
				Type  string `json:"type"`
				Step  int    `json:"step"`
				Count int    `json:"count"`
			}{e.Type.String(), e.Step, e.Count}
		case EventRound:
			rec = struct {
				Type  string  `json:"type"`
				Step  int     `json:"step"`
				Node  int     `json:"node"`
				Round int     `json:"round"`
				Value float64 `json:"value"`
			}{e.Type.String(), e.Step, e.Node, e.Round, e.Value}
		default:
			return
		}
		sticky = enc.Encode(rec)
	})
	return obs, func() error {
		mu.Lock()
		defer mu.Unlock()
		return sticky
	}
}
