// Cross-engine equivalence and schedule-determinism regression tests: the
// inline and goroutine engines must replay byte-identical delivery traces
// and produce identical outputs for the same (seed, policy, graph) tuple,
// and repeated runs of one tuple must never drift. These tests pin the
// guarantee the Engine abstraction is built on (see internal/sim).
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestCrossEngineEquivalenceBW runs the full BW protocol with a Byzantine
// fault on both engines and demands identical traces, outputs and message
// accounting.
func TestCrossEngineEquivalenceBW(t *testing.T) {
	g := repro.Fig1a()
	inputs := []float64{0, 4, 1, 3, 2}
	for _, seed := range []int64{1, 5, 23} {
		run := func(engine string) *repro.Result {
			res, err := repro.RunBW(g, inputs, repro.Options{
				F: 1, K: 4, Eps: 0.25, Seed: seed,
				Engine: engine, RecordTrace: true,
				Faults: map[int]repro.Fault{1: {Kind: "tamper", Params: map[string]float64{"delta": 50}}},
			})
			if err != nil {
				t.Fatalf("engine %q seed %d: %v", engine, seed, err)
			}
			return res
		}
		inline, goroutine := run("inline"), run("goroutine")
		if inline.Trace == "" {
			t.Fatal("no trace recorded")
		}
		if inline.Trace != goroutine.Trace {
			t.Fatalf("seed %d: delivery traces differ between engines", seed)
		}
		if inline.Steps != goroutine.Steps || inline.MessagesSent != goroutine.MessagesSent {
			t.Fatalf("seed %d: accounting differs: %d/%d steps, %d/%d sends",
				seed, inline.Steps, goroutine.Steps, inline.MessagesSent, goroutine.MessagesSent)
		}
		for id, x := range inline.Outputs {
			if goroutine.Outputs[id] != x {
				t.Fatalf("seed %d node %d: %v vs %v", seed, id, x, goroutine.Outputs[id])
			}
		}
	}
}

// bwTrace runs honest BW on g under the given policy and engine and returns
// the delivery trace plus a rendering of the outputs.
func bwTrace(t *testing.T, g *graph.Graph, policy transport.Policy, engine sim.Engine) (string, string) {
	t.Helper()
	proto, err := bw.NewProto(g, 1, 4, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, float64((i*3)%5))
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = m
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: policy, Engine: engine, RecordTrace: true}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(g.Nodes())
	return r.TraceString(), fmt.Sprintf("%v %v", outs, all)
}

// TestScheduleDeterminismRegression fixes (seed, policy, graph) and demands
// a byte-identical delivery trace across repeated runs and across both
// engines, for every asynchrony policy. This is the regression fence for
// the transport determinism contract (pending order is a pure function of
// the Add/Take/ReleaseHeld sequence).
func TestScheduleDeterminismRegression(t *testing.T) {
	g := graph.Clique(4)
	policies := []struct {
		name string
		make func() transport.Policy
	}{
		{"random", func() transport.Policy { return transport.NewRandomPolicy(77) }},
		{"fifo", func() transport.Policy { return transport.FIFOPolicy{} }},
		{"lifo", func() transport.Policy { return transport.LIFOPolicy{} }},
		{"bounded", func() transport.Policy { return transport.NewBoundedDelayPolicy(5, 77) }},
	}
	for _, pc := range policies {
		t.Run(pc.name, func(t *testing.T) {
			baseTrace, baseOut := bwTrace(t, g, pc.make(), sim.Inline())
			if baseTrace == "" {
				t.Fatal("empty trace")
			}
			for run := 0; run < 2; run++ {
				for _, eng := range []sim.Engine{sim.Inline(), sim.Goroutine()} {
					trace, out := bwTrace(t, g, pc.make(), eng)
					if trace != baseTrace {
						t.Fatalf("engine %s run %d: trace drifted", eng.Name(), run)
					}
					if out != baseOut {
						t.Fatalf("engine %s run %d: outputs drifted: %s vs %s",
							eng.Name(), run, out, baseOut)
					}
				}
			}
		})
	}
}
